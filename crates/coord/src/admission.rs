//! Thread-safe per-redirector admission state.

use crate::{Coordinator, TreeCoordination};
use covenant_agreements::{AccessLevels, PrincipalId};
use covenant_enforce::{ArrivalOutcome, EnforcementCore, EnforcementCounters, QueueMode};
use covenant_sched::{Plan, Request, SchedulerConfig};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The admission state machine one redirector's data plane consults.
///
/// This is a thread-safe shell around the shared
/// [`EnforcementCore`] — the same state machine the simulator runs —
/// coordinating through the live [`Coordinator`] tree. `try_admit` is
/// called on the request path (HTTP handler thread or TCP accept thread);
/// `roll_window` is called by the [`crate::WindowDaemon`] every scheduling
/// window.
///
/// The core runs in credit mode: transports that park out-of-quota work
/// (explicit L7 queues, L4 parked connections) hold it *outside* the core,
/// report its depth via the roll's backlog hint, and drain it through
/// [`Self::readmit`].
///
/// Lock order: `roll_window` holds `inner` while the enforcement core's
/// read/publish calls back into the coordinator's `state` lock — a
/// cross-crate edge `covenant-lint`'s lexical pass cannot see, declared
/// here for its cycle check. The L4 drain additionally holds its `parked`
/// queue lock while readmitting through `inner`.
// covenant: lock-order(parked < inner < state)
pub struct AdmissionControl {
    node: usize,
    coordinator: Coordinator,
    /// Request ids for gate bookkeeping, allocated outside the core lock.
    next_request_id: AtomicU64,
    inner: Mutex<EnforcementCore<TreeCoordination>>,
}

impl AdmissionControl {
    /// Builds the admission control for tree node `node`.
    pub fn new(
        node: usize,
        levels: &AccessLevels,
        cfg: SchedulerConfig,
        coordinator: Coordinator,
    ) -> Arc<Self> {
        let core = EnforcementCore::new(
            levels,
            cfg,
            // Live transports answer out-of-quota requests themselves
            // (self-redirect or external parking), so the core never holds
            // requests internally.
            QueueMode::CreditRetry { retry_delay: 0.0 },
            TreeCoordination::new(coordinator.clone(), node),
        );
        Arc::new(AdmissionControl {
            node,
            coordinator,
            next_request_id: AtomicU64::new(0),
            inner: Mutex::new(core),
        })
    }

    /// The tree node this control plane instance belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The scheduling window length, seconds (daemons must tick at exactly
    /// this cadence — quotas are scaled to it).
    pub fn window_secs(&self) -> f64 {
        self.inner.lock().window_secs()
    }

    /// The shared coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// Attempts to admit one unit-cost request for `principal`, preferring
    /// `preferred` server when it still has allocation (connection
    /// affinity). Returns the assigned server on success.
    pub fn try_admit(&self, principal: PrincipalId, preferred: Option<usize>) -> Option<usize> {
        let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let req = Request::unit(id, principal, self.coordinator.now());
        match self.inner.lock().on_arrival_preferring(req, preferred) {
            ArrivalOutcome::Forward { server } => Some(server),
            ArrivalOutcome::Defer | ArrivalOutcome::Queued => None,
        }
    }

    /// Records an arrival without consulting the gate — used by explicit
    /// queuing, where requests always park and the per-window drain decides
    /// release (the paper's first L7 implementation).
    pub fn note_arrival(&self, principal: PrincipalId) {
        self.inner.lock().note_arrival(principal, 1.0);
    }

    /// Like [`Self::try_admit`] but for *parked* work being reinjected: the
    /// request was already counted as an arrival when it first reached the
    /// redirector, and its continued presence is reported via the backlog
    /// hint, so it must not inflate the demand estimate again.
    pub fn readmit(&self, principal: PrincipalId, preferred: Option<usize>) -> Option<usize> {
        let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let req = Request::unit(id, principal, self.coordinator.now());
        self.inner.lock().readmit(&req, preferred)
    }

    /// Rolls one scheduling window at the coordinator's current time (see
    /// [`Self::roll_window_at`]).
    pub fn roll_window(&self, backlog: Option<Vec<f64>>) {
        self.roll_window_at(backlog.as_deref(), self.coordinator.now());
    }

    /// Rolls one scheduling window at time `now`: folds the arrivals just
    /// observed into the demand estimator, *reads* the lagged global view,
    /// solves the LP, *publishes* local demand (estimates plus any
    /// data-plane backlog, e.g. L4 parked connections) into the tree, and
    /// installs fresh credits. Read-before-publish makes the view one
    /// window stale — identical to the simulator's staleness, which is
    /// what the sim-vs-live differential tests rely on.
    pub fn roll_window_at(&self, backlog: Option<&[f64]>, now: f64) {
        let mut released = Vec::new();
        self.inner.lock().on_window_tick(now, backlog, &mut released);
        debug_assert!(released.is_empty(), "credit mode never holds requests");
    }

    /// `(hits, misses)` of the scheduler's plan cache since start.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.inner.lock().cache_stats()
    }

    /// `(solves, pivots)` of the scheduler's LP workspace since start.
    pub fn lp_stats(&self) -> (u64, u64) {
        self.inner.lock().lp_stats()
    }

    /// `(warm_hits, cold_fallbacks)` of the warm-started revised solver
    /// since start.
    pub fn warm_stats(&self) -> (u64, u64) {
        self.inner.lock().warm_stats()
    }

    /// The most recent installed plan (per-window request budgets).
    pub fn last_plan(&self) -> Plan {
        self.inner.lock().last_plan().clone()
    }

    /// (admitted, deferred) counters since start.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.admitted(), inner.deferred())
    }

    /// A full counter snapshot for the shared observability payload (see
    /// `covenant_core::live_counters_json`).
    pub fn counters_snapshot(&self) -> EnforcementCounters {
        self.inner.lock().counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;
    use covenant_tree::Topology;

    fn levels() -> AccessLevels {
        // Server 100 req/s, A [0.2,1], B [0.8,1].
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
        g.access_levels()
    }

    fn control() -> Arc<AdmissionControl> {
        AdmissionControl::new(
            0,
            &levels(),
            SchedulerConfig::community_default(),
            Coordinator::new(Topology::star(1, 0.0), 0.0),
        )
    }

    #[test]
    fn cold_start_defers_then_admits() {
        let ctrl = control();
        let a = PrincipalId(1);
        // No window rolled yet: everything defers.
        assert_eq!(ctrl.try_admit(a, None), None);
        assert_eq!(ctrl.try_admit(a, None), None);
        // First roll plans conservatively (read happens before this
        // round's publish, so the view is still empty): half of A's
        // mandatory 2/window, capped by the observed demand 2 → 1 admit.
        ctrl.roll_window(None);
        assert!(ctrl.try_admit(a, None).is_some());
        assert_eq!(ctrl.try_admit(a, None), None);
        // Second roll sees the first round's published demand: the
        // informed plan covers the full ~2/window estimate.
        ctrl.roll_window(None);
        assert!(ctrl.try_admit(a, None).is_some());
        assert!(ctrl.try_admit(a, None).is_some());
        let (admitted, deferred) = ctrl.counters();
        assert_eq!((admitted, deferred), (3, 3));
    }

    #[test]
    fn quota_respects_agreement_share() {
        let ctrl = control();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        // Saturate both principals for a few windows to prime estimates.
        for _ in 0..6 {
            for _ in 0..30 {
                let _ = ctrl.try_admit(a, None);
                let _ = ctrl.try_admit(b, None);
            }
            ctrl.roll_window(None);
        }
        // One more saturated window: count admissions.
        let mut got_a = 0;
        let mut got_b = 0;
        for _ in 0..30 {
            if ctrl.try_admit(a, None).is_some() {
                got_a += 1;
            }
            if ctrl.try_admit(b, None).is_some() {
                got_b += 1;
            }
        }
        // Per 100 ms window: capacity 10; B entitled to 8, A to 2 (with
        // ±1 tolerance for credit carry-over).
        assert!((got_b as i64 - 8).abs() <= 1, "B got {got_b}");
        assert!((got_a as i64 - 2).abs() <= 1, "A got {got_a}");
    }

    #[test]
    fn backlog_hint_raises_demand() {
        let ctrl = control();
        let b = PrincipalId(2);
        // No arrivals at all, but a parked backlog of 5 for B. The first
        // roll is conservative (empty view): half of B's mandatory 8 = 4.
        ctrl.roll_window(Some(vec![0.0, 0.0, 5.0]));
        let quota = ctrl.last_plan().admitted(b);
        assert!((quota - 4.0).abs() < 1e-6, "conservative quota {quota}");
        // The second roll sees the published backlog and grants all 5.
        ctrl.roll_window(Some(vec![0.0, 0.0, 5.0]));
        let mut got = 0;
        for _ in 0..5 {
            if ctrl.try_admit(b, None).is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 5);
    }

    #[test]
    fn last_plan_is_observable() {
        let ctrl = control();
        let a = PrincipalId(1);
        for _ in 0..3 {
            let _ = ctrl.try_admit(a, None);
        }
        ctrl.roll_window(None);
        let plan = ctrl.last_plan();
        assert!(plan.admitted(a) > 0.0);
    }

    #[test]
    fn virtual_time_rolls_are_deterministic() {
        // roll_window_at with explicit times drives the same machine the
        // wall-clock daemon does; replaying an identical arrival/roll
        // sequence must reproduce identical decisions — the property the
        // sim-vs-live differential tests build on.
        let run = || {
            let ctrl = control();
            let b = PrincipalId(2);
            let mut admits = Vec::new();
            for w in 1..=5u32 {
                let mut got = 0;
                for _ in 0..12 {
                    if ctrl.try_admit(b, None).is_some() {
                        got += 1;
                    }
                }
                admits.push(got);
                ctrl.roll_window_at(None, f64::from(w) * 0.1);
            }
            admits
        };
        let first = run();
        assert_eq!(first, run());
        // The quota ramps up from the conservative cold start instead of
        // jumping straight to steady state.
        assert!(first[0] == 0, "cold window admitted {first:?}");
        assert!(first.last().copied().unwrap() > 0, "never admitted {first:?}");
    }
}
