//! `covenant-verify` — static agreement-contract verifier.
//!
//! The enforcement machinery silently assumes the agreement set it is
//! handed is *sane*: guarantees don't oversubscribe capacity, currency
//! actually backs issued tickets, and tree staleness stays within one
//! window. This crate checks those contracts statically, before anything
//! runs, against the declarative [`DeploymentSpec`] — with the same
//! `file:line:col` diagnostic quality `covenant-lint` gives Rust source.
//!
//! Rules, in check order:
//!
//! - **V1 `references`** — every agreement issuer/holder and client
//!   principal names a declared principal, client redirector indices fit
//!   the tree, principal names are unique, and `allow` entries name real
//!   rules.
//! - **V2 `agreements`** — `0 ≤ lb ≤ ub ≤ 1`, issuer ≠ holder, no
//!   duplicate issuer/holder pairs, and no NaN/negative numerics (the
//!   JSON decoder rejects those too; this covers specs built in Rust).
//! - **V3 `solvency`** — Σ lb over an issuer's direct agreements stays
//!   within 1, and every issuer's currency has real backing: its own
//!   capacity or transitive flow along the agreement graph, computed with
//!   the same simple-path closure the scheduler uses (paper Formulae 1–2).
//! - **V4 `cycles`** (warning) — currency cycles are legal (the flow
//!   closure follows simple paths only) but each one is surfaced with its
//!   full path, because value around a cycle is easy to misread.
//! - **V5 `timing`** — the redirector tree is well-formed (one root,
//!   parents in range, no parent cycles) and worst-case coordination
//!   staleness `2 × depth × tree_edge_delay + extra_tree_lag` fits within
//!   one scheduling window — the one-window-staleness assumption the
//!   sim/live differential proves. Deployments that deliberately model
//!   WAN lag (the paper's Figure 8 regime) can opt out per spec with
//!   `"allow": ["V5"]`.
//! - **V6 `policy-shape`** — `caps`/`prices` vectors are exactly one
//!   entry per principal, all finite and non-negative.
//! - **V7 `load`** (warning) — worst-case offered client demand per
//!   principal (max over phases, summed across its clients) fits the
//!   principal's entitled mandatory + optional share; excess is legal but
//!   will be deferred or dropped.
//! - **V8 `link-sanity`** — a scenario's `net` section declares exactly
//!   one link per redirector, every rate is finite and positive, and the
//!   byte scale and hop latency are sane.
//! - **V9 `timeline-order`** — scenario timeline events are sorted by
//!   time (non-decreasing `at`) and none is scheduled past the run's
//!   duration (it would never fire).
//! - **V10 `renegotiation`** — every `renegotiate` timeline event targets
//!   a declared agreement, and replaying the renegotiations in order
//!   leaves an agreement set that still passes the V2 bounds and V3
//!   direct-solvency contracts.
//!
//! Suppress a rule for one spec by listing its code in the spec's
//! `"allow"` field. Findings are structural ([`Finding`], a JSON path
//! into the spec); [`check_text`] resolves them against the positioned
//! parse of the source text into [`Diagnostic`]s that print
//! `spec.json:12:7: error[V3] …`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rules;

pub use covenant_lint::{to_json, Diag, RuleMeta, Severity};

use covenant_core::json::Spanned;
use covenant_core::scenario::ScenarioSpec;
use covenant_core::spec::DeploymentSpec;
use covenant_core::SpecError;
use std::fmt;

/// The verifier rules, in check order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VRule {
    /// V1: dangling references (principals, redirectors, rule codes).
    References,
    /// V2: agreement sanity (bounds, self-deals, duplicates, numerics).
    Agreements,
    /// V3: issuer solvency (direct guarantees and currency backing).
    Solvency,
    /// V4: currency cycles (legal; reported with the full path).
    Cycles,
    /// V5: timing sanity (tree shape and staleness vs the window).
    Timing,
    /// V6: policy vector shape.
    PolicyShape,
    /// V7: worst-case client load vs entitled share.
    Load,
    /// V8: scenario link sanity (count vs tree, positive finite rates).
    LinkSanity,
    /// V9: scenario timeline ordering (events non-decreasing in time,
    /// within the run).
    TimelineOrder,
    /// V10: renegotiated agreements re-pass the V2/V3 contracts.
    Renegotiation,
}

impl VRule {
    /// All rules.
    pub const ALL: [VRule; 10] = [
        VRule::References,
        VRule::Agreements,
        VRule::Solvency,
        VRule::Cycles,
        VRule::Timing,
        VRule::PolicyShape,
        VRule::Load,
        VRule::LinkSanity,
        VRule::TimelineOrder,
        VRule::Renegotiation,
    ];
}

impl RuleMeta for VRule {
    fn code(self) -> &'static str {
        match self {
            VRule::References => "V1",
            VRule::Agreements => "V2",
            VRule::Solvency => "V3",
            VRule::Cycles => "V4",
            VRule::Timing => "V5",
            VRule::PolicyShape => "V6",
            VRule::Load => "V7",
            VRule::LinkSanity => "V8",
            VRule::TimelineOrder => "V9",
            VRule::Renegotiation => "V10",
        }
    }

    fn severity(self) -> Severity {
        match self {
            // Cycles are legal and overload degrades gracefully; everything
            // else breaks a contract the enforcement machinery assumes.
            VRule::Cycles | VRule::Load => Severity::Warning,
            _ => Severity::Error,
        }
    }

    fn registry() -> &'static [Self] {
        &VRule::ALL
    }

    fn describe(self) -> &'static str {
        match self {
            VRule::References => "references to unknown principals, redirectors, or rule codes",
            VRule::Agreements => "agreement sanity: bounds order and range, self-deals, duplicates",
            VRule::Solvency => "issuer solvency: direct guarantees and transitive currency backing",
            VRule::Cycles => "currency cycles (legal; reported with the full path)",
            VRule::Timing => "timing sanity: tree well-formedness and staleness vs the window",
            VRule::PolicyShape => "policy caps/prices vector shape vs the principal list",
            VRule::Load => "worst-case client demand vs entitled mandatory+optional share",
            VRule::LinkSanity => "scenario link sanity: one positive finite rate per redirector",
            VRule::TimelineOrder => "scenario timeline ordering: events sorted by time, within the run",
            VRule::Renegotiation => "renegotiated agreements re-pass bounds and solvency (V2/V3)",
        }
    }
}

impl fmt::Display for VRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One step of a JSON path from the spec document root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// An object key.
    Key(&'static str),
    /// An array index.
    Index(usize),
}

/// A structural finding: a rule plus the JSON path to the offending value.
///
/// Findings are produced against the decoded [`DeploymentSpec`] (which may
/// never have been JSON at all — `Cluster::launch` verifies Rust-built
/// specs too); [`resolve`] turns them into positioned [`Diagnostic`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: VRule,
    /// Path from the document root to the offending value.
    pub at: Vec<Step>,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// The JSON path rendered `agreements[2].lb` style (`spec` for the
    /// document root).
    pub fn path(&self) -> String {
        if self.at.is_empty() {
            return "spec".to_string();
        }
        let mut out = String::new();
        for step in &self.at {
            match step {
                Step::Key(k) => {
                    if !out.is_empty() {
                        out.push('.');
                    }
                    out.push_str(k);
                }
                Step::Index(i) => {
                    out.push('[');
                    out.push_str(&i.to_string());
                    out.push(']');
                }
            }
        }
        out
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}[{}] {}", self.path(), self.rule.severity(), self.rule, self.message)
    }
}

/// A positioned verifier diagnostic (shared [`Diag`] shape with
/// `covenant-lint`, so `--json`, `--deny`, and Display all match).
pub type Diagnostic = Diag<VRule>;

/// Statically verifies a decoded spec. Findings for rules listed in the
/// spec's `allow` field are suppressed; everything else is returned in
/// check order (V1 first).
pub fn verify_spec(spec: &DeploymentSpec) -> Vec<Finding> {
    rules::run(spec)
}

/// Statically verifies a scenario: the embedded deployment's rules
/// (V1–V7) plus the scenario rules (V8 link sanity, V9 timeline order,
/// V10 renegotiation contracts). The deployment's `allow` list suppresses
/// scenario rules too.
pub fn verify_scenario(spec: &ScenarioSpec) -> Vec<Finding> {
    rules::run_scenario(spec)
}

/// Positions structural findings against the spanned parse of the source
/// text. Without a source (`None` — the spec was built in Rust), the
/// diagnostics carry line 0 / col 0 and lean on the JSON path embedded in
/// the message.
pub fn resolve(findings: &[Finding], source: Option<&Spanned>, label: &str) -> Vec<Diagnostic> {
    findings
        .iter()
        .map(|f| {
            let (line, col) = source.map_or((0, 0), |s| locate(s, &f.at));
            Diagnostic::new(
                f.rule,
                label.to_string(),
                line,
                col,
                format!("{}: {}", f.path(), f.message),
            )
        })
        .collect()
}

/// Walks `steps` into the positioned tree, returning the position of the
/// deepest value that exists (defaulted fields have no source text — the
/// nearest existing ancestor is the best anchor).
fn locate(root: &Spanned, steps: &[Step]) -> (u32, u32) {
    let mut at = root;
    for step in steps {
        let next = match step {
            Step::Key(k) => at.get(k),
            Step::Index(i) => at.item(*i),
        };
        match next {
            Some(n) => at = n,
            None => break,
        }
    }
    at.pos()
}

/// The full `covenant check` pipeline: positioned parse, scenario decode
/// (plain deployment specs are scenarios with no extras), verification of
/// all rules V1–V10, and position resolution. `label` is the path printed
/// in diagnostics. Parse and decode failures are themselves load-time
/// errors and surface as `Err`.
pub fn check_text(label: &str, text: &str) -> Result<Vec<Diagnostic>, SpecError> {
    let spanned = Spanned::parse(text).map_err(SpecError::Json)?;
    let spec = ScenarioSpec::from_json(text)?;
    let findings = verify_scenario(&spec);
    Ok(resolve(&findings, Some(&spanned), label))
}

/// Whether any diagnostic carries error severity (the launch-refusal
/// predicate).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}
