//! The V1–V7 rule implementations.
//!
//! Every rule walks the decoded [`DeploymentSpec`] and reports structural
//! [`Finding`]s addressed by JSON path; position resolution happens later
//! against the spanned parse. Rules that need the agreement graph (V3's
//! backing walk, V4, V7) only run when the graph builds — the structural
//! rules ahead of them cover every reason it could not.

use crate::{Finding, RuleMeta, Step, VRule};
use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_core::scenario::{ScenarioSpec, TimelineEvent};
use covenant_core::spec::{DeploymentSpec, PolicySpec};
use Step::{Index, Key};

/// Slack for floating-point sums of fractions.
const TOL: f64 = 1e-9;

/// At most this many distinct cycles are reported per spec (V4).
const MAX_CYCLES: usize = 16;

/// Work bound on the cycle search; beyond it the report notes truncation.
const MAX_CYCLE_STEPS: usize = 100_000;

pub(crate) fn run(spec: &DeploymentSpec) -> Vec<Finding> {
    let mut out = run_unfiltered(spec);
    filter_allowed(spec, &mut out);
    out
}

pub(crate) fn run_scenario(sc: &ScenarioSpec) -> Vec<Finding> {
    let mut out = run_unfiltered(&sc.deployment);
    link_sanity(sc, &mut out);
    timeline_order(sc, &mut out);
    renegotiation(sc, &mut out);
    filter_allowed(&sc.deployment, &mut out);
    out
}

fn run_unfiltered(spec: &DeploymentSpec) -> Vec<Finding> {
    let mut out = Vec::new();
    references(spec, &mut out);
    agreement_sanity(spec, &mut out);
    scalar_sanity(spec, &mut out);
    solvency_direct(spec, &mut out);
    tree_and_timing(spec, &mut out);
    policy_shape(spec, &mut out);
    if let Ok(graph) = spec.build_graph() {
        solvency_backing(spec, &graph, &mut out);
        cycles(spec, &mut out);
        load(spec, &graph, &mut out);
    }
    out
}

fn filter_allowed(spec: &DeploymentSpec, out: &mut Vec<Finding>) {
    let allowed =
        |code: &str| spec.allow.iter().any(|a| a.trim().eq_ignore_ascii_case(code));
    out.retain(|f| !allowed(f.rule.code()));
}

fn push(out: &mut Vec<Finding>, rule: VRule, at: Vec<Step>, message: String) {
    out.push(Finding { rule, at, message });
}

fn finite_nonneg(x: f64) -> bool {
    x.is_finite() && x >= 0.0
}

/// V1 — reference integrity: unique principal names; agreement and client
/// principal references resolve; client redirector indices fit the tree;
/// `allow` entries name real rules.
fn references(spec: &DeploymentSpec, out: &mut Vec<Finding>) {
    let known = |name: &str| spec.principals.iter().any(|p| p.name == name);
    for (i, p) in spec.principals.iter().enumerate() {
        if spec.principals.iter().take(i).any(|q| q.name == p.name) {
            push(
                out,
                VRule::References,
                vec![Key("principals"), Index(i), Key("name")],
                format!("duplicate principal name '{}'", p.name),
            );
        }
    }
    for (i, a) in spec.agreements.iter().enumerate() {
        for (role, name) in [("issuer", a.issuer.as_str()), ("holder", a.holder.as_str())] {
            if !known(name) {
                push(
                    out,
                    VRule::References,
                    vec![Key("agreements"), Index(i), Key(role)],
                    format!("{role} '{name}' is not a declared principal"),
                );
            }
        }
    }
    let n_redirectors = spec.redirector_tree.len();
    for (i, c) in spec.clients.iter().enumerate() {
        if !known(&c.principal) {
            push(
                out,
                VRule::References,
                vec![Key("clients"), Index(i), Key("principal")],
                format!("client principal '{}' is not a declared principal", c.principal),
            );
        }
        if c.redirector >= n_redirectors {
            push(
                out,
                VRule::References,
                vec![Key("clients"), Index(i), Key("redirector")],
                format!(
                    "redirector index {} out of range for a {n_redirectors}-node tree",
                    c.redirector
                ),
            );
        }
    }
    for (i, code) in spec.allow.iter().enumerate() {
        if VRule::from_code(code).is_none() {
            push(
                out,
                VRule::References,
                vec![Key("allow"), Index(i)],
                format!("unknown rule code '{code}' in allow list (rules are V1..V10)"),
            );
        }
    }
}

/// V2 — agreement sanity: bounds within `[0, 1]` and ordered, no
/// self-agreements, no duplicate issuer/holder pairs.
fn agreement_sanity(spec: &DeploymentSpec, out: &mut Vec<Finding>) {
    for (i, a) in spec.agreements.iter().enumerate() {
        if a.issuer == a.holder {
            push(
                out,
                VRule::Agreements,
                vec![Key("agreements"), Index(i)],
                format!("'{}' cannot issue an agreement to itself", a.issuer),
            );
        }
        let mut bounds_ok = true;
        for (key, x) in [("lb", a.lb), ("ub", a.ub)] {
            if !(x.is_finite() && (0.0..=1.0).contains(&x)) {
                push(
                    out,
                    VRule::Agreements,
                    vec![Key("agreements"), Index(i), Key(key)],
                    format!("{key} must be a fraction within [0, 1], got {x}"),
                );
                bounds_ok = false;
            }
        }
        if bounds_ok && a.lb > a.ub {
            push(
                out,
                VRule::Agreements,
                vec![Key("agreements"), Index(i), Key("lb")],
                format!(
                    "lb {} exceeds ub {}: the guarantee is larger than the best-effort cap",
                    a.lb, a.ub
                ),
            );
        }
        if let Some(j) = spec
            .agreements
            .iter()
            .take(i)
            .position(|b| b.issuer == a.issuer && b.holder == a.holder)
        {
            push(
                out,
                VRule::Agreements,
                vec![Key("agreements"), Index(i)],
                format!(
                    "duplicate agreement {} -> {} (first declared at agreements[{j}])",
                    a.issuer, a.holder
                ),
            );
        }
    }
}

/// V2 — scalar sanity for specs that never went through the JSON decoder
/// (`Cluster::launch` verifies Rust-built specs too): capacities,
/// duration, and phase pairs must be finite and non-negative.
fn scalar_sanity(spec: &DeploymentSpec, out: &mut Vec<Finding>) {
    for (i, p) in spec.principals.iter().enumerate() {
        if !finite_nonneg(p.capacity) {
            push(
                out,
                VRule::Agreements,
                vec![Key("principals"), Index(i), Key("capacity")],
                format!("capacity must be a finite, non-negative rate, got {}", p.capacity),
            );
        }
    }
    if !finite_nonneg(spec.duration) {
        push(
            out,
            VRule::Agreements,
            vec![Key("duration")],
            format!("duration must be a finite, non-negative number of seconds, got {}", spec.duration),
        );
    }
    for (ci, c) in spec.clients.iter().enumerate() {
        for (pi, &(d, r)) in c.phases.iter().enumerate() {
            if !finite_nonneg(d) || !finite_nonneg(r) {
                push(
                    out,
                    VRule::Agreements,
                    vec![Key("clients"), Index(ci), Key("phases"), Index(pi)],
                    format!("phase [duration, rate] must be finite and non-negative, got [{d}, {r}]"),
                );
            }
        }
    }
}

/// V3, direct half — an issuer's guaranteed fractions must fit within its
/// whole capacity: Σ lb over its direct agreements ≤ 1.
fn solvency_direct(spec: &DeploymentSpec, out: &mut Vec<Finding>) {
    for p in &spec.principals {
        let mut sum = 0.0;
        let mut last = None;
        for (i, a) in spec.agreements.iter().enumerate() {
            if a.issuer == p.name && a.lb.is_finite() && a.lb > 0.0 {
                sum += a.lb;
                last = Some(i);
            }
        }
        if sum > 1.0 + TOL {
            if let Some(i) = last {
                push(
                    out,
                    VRule::Solvency,
                    vec![Key("agreements"), Index(i), Key("lb")],
                    format!(
                        "issuer '{}' guarantees sum(lb) = {sum:.3} across its direct \
                         agreements; guarantees may not exceed its whole capacity (1.0)",
                        p.name
                    ),
                );
            }
        }
    }
}

/// V3, backing half — every issuer's currency needs real value behind it:
/// own capacity or transitive in-flow along the agreement graph, via the
/// same simple-path closure the scheduler uses. Mandatory (`lb > 0`)
/// tickets specifically need *mandatory* backing.
fn solvency_backing(spec: &DeploymentSpec, graph: &AgreementGraph, out: &mut Vec<Finding>) {
    let flows = graph.flows();
    let v = graph.capacities();
    for (pi, p) in spec.principals.iter().enumerate() {
        let Some(first) = spec.agreements.iter().position(|a| a.issuer == p.name) else {
            continue;
        };
        let id = PrincipalId(pi);
        let mandatory_value = flows.currency_mandatory_value(&v, id);
        let optional_in: f64 = (0..spec.principals.len())
            .map(|j| flows.oi(&v, PrincipalId(j), id))
            .sum();
        let issues_mandatory =
            spec.agreements.iter().any(|a| a.issuer == p.name && a.lb > 0.0);
        let at = vec![Key("agreements"), Index(first), Key("issuer")];
        if issues_mandatory && mandatory_value <= TOL {
            push(
                out,
                VRule::Solvency,
                at,
                format!(
                    "issuer '{}' has no capacity and no transitive mandatory currency \
                     backing: its guaranteed (lb > 0) tickets are unbacked",
                    p.name
                ),
            );
        } else if mandatory_value + optional_in <= TOL {
            push(
                out,
                VRule::Solvency,
                at,
                format!(
                    "issuer '{}' has no capacity and no currency backing along any \
                     agreement path: its tickets are worthless",
                    p.name
                ),
            );
        }
    }
}

/// V5 — the redirector tree must be well-formed, and worst-case
/// coordination staleness must fit within one scheduling window.
fn tree_and_timing(spec: &DeploymentSpec, out: &mut Vec<Finding>) {
    let tree = &spec.redirector_tree;
    let n = tree.len();
    if n == 0 {
        push(
            out,
            VRule::Timing,
            vec![Key("redirector_tree")],
            "redirector_tree must have at least one node".to_string(),
        );
        return;
    }
    let roots: Vec<usize> =
        (0..n).filter(|&i| tree.get(i).is_some_and(Option::is_none)).collect();
    let mut shape_ok = true;
    if roots.len() != 1 {
        push(
            out,
            VRule::Timing,
            vec![Key("redirector_tree")],
            format!(
                "redirector_tree must have exactly one root (null parent), found {}",
                roots.len()
            ),
        );
        shape_ok = false;
    }
    for (i, parent) in tree.iter().enumerate() {
        let Some(p) = parent else { continue };
        if *p >= n {
            push(
                out,
                VRule::Timing,
                vec![Key("redirector_tree"), Index(i)],
                format!("parent index {p} out of range for a {n}-node tree"),
            );
            shape_ok = false;
        } else if *p == i {
            push(
                out,
                VRule::Timing,
                vec![Key("redirector_tree"), Index(i)],
                format!("node {i} is its own parent"),
            );
            shape_ok = false;
        }
    }

    let mut depth = vec![usize::MAX; n];
    if shape_ok {
        // Parents are in range and there is exactly one root: any node the
        // BFS cannot reach sits on a parent cycle.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, parent) in tree.iter().enumerate() {
            if let Some(p) = parent {
                children[*p].push(i);
            }
        }
        let mut queue: Vec<usize> = roots.clone();
        for &r in &roots {
            depth[r] = 0;
        }
        let mut head = 0;
        while let Some(&node) = queue.get(head) {
            head += 1;
            for &c in &children[node] {
                if depth[c] == usize::MAX {
                    depth[c] = depth[node] + 1;
                    queue.push(c);
                }
            }
        }
        for (i, d) in depth.iter().enumerate() {
            if *d == usize::MAX {
                push(
                    out,
                    VRule::Timing,
                    vec![Key("redirector_tree"), Index(i)],
                    format!("node {i} is unreachable from the root: its parent chain forms a cycle"),
                );
                shape_ok = false;
            }
        }
    }

    for (key, x) in
        [("tree_edge_delay", spec.tree_edge_delay), ("extra_tree_lag", spec.extra_tree_lag)]
    {
        if !finite_nonneg(x) {
            push(
                out,
                VRule::Timing,
                vec![Key(key)],
                format!("{key} must be a finite, non-negative number of seconds, got {x}"),
            );
            shape_ok = false;
        }
    }
    if !(spec.window_secs.is_finite() && spec.window_secs > 0.0) {
        push(
            out,
            VRule::Timing,
            vec![Key("window_secs")],
            format!("window_secs must be a positive number of seconds, got {}", spec.window_secs),
        );
        return;
    }
    if shape_ok {
        let max_depth = depth.iter().copied().filter(|&d| d != usize::MAX).max().unwrap_or(0);
        let staleness =
            2.0 * max_depth as f64 * spec.tree_edge_delay + spec.extra_tree_lag;
        if staleness > spec.window_secs + TOL {
            push(
                out,
                VRule::Timing,
                vec![Key("tree_edge_delay")],
                format!(
                    "worst-case coordination staleness {staleness:.3}s (2 x depth {max_depth} \
                     x {}s edge delay + {}s extra lag) exceeds the {}s scheduling window: the \
                     one-window-staleness contract cannot hold (allow V5 to model WAN lag \
                     deliberately)",
                    spec.tree_edge_delay, spec.extra_tree_lag, spec.window_secs
                ),
            );
        }
    }
}

/// V6 — locality caps and provider prices are per-principal vectors: the
/// length must match the principal list exactly, entries finite and
/// non-negative.
fn policy_shape(spec: &DeploymentSpec, out: &mut Vec<Finding>) {
    let n = spec.principals.len();
    let (key, xs) = match &spec.policy {
        PolicySpec::Community => return,
        PolicySpec::CommunityWithLocality { caps } => ("caps", caps),
        PolicySpec::Provider { prices } => ("prices", prices),
    };
    if xs.len() != n {
        push(
            out,
            VRule::PolicyShape,
            vec![Key("policy"), Key(key)],
            format!(
                "policy {key} has {} entries for {n} principals; one entry per principal, \
                 in declaration order",
                xs.len()
            ),
        );
    }
    for (j, x) in xs.iter().enumerate() {
        if !finite_nonneg(*x) {
            push(
                out,
                VRule::PolicyShape,
                vec![Key("policy"), Key(key), Index(j)],
                format!("policy {key} entries must be finite, non-negative numbers, got {x}"),
            );
        }
    }
}

/// Bounded elementary-cycle search state (V4).
struct CycleSearch<'a> {
    spec: &'a DeploymentSpec,
    /// `adj[i]` lists `(holder, agreement index)` edges issued by `i`.
    adj: Vec<Vec<(usize, usize)>>,
    found: usize,
    steps: usize,
    truncated: bool,
}

impl CycleSearch<'_> {
    /// Explores simple paths from `start` through nodes `> start` only, so
    /// each elementary cycle is reported exactly once (anchored at its
    /// minimum-index node).
    fn dfs(
        &mut self,
        start: usize,
        at: usize,
        path: &mut Vec<usize>,
        on_path: &mut [bool],
        out: &mut Vec<Finding>,
    ) {
        if self.steps >= MAX_CYCLE_STEPS {
            self.truncated = true;
            return;
        }
        self.steps += 1;
        let edges = self.adj.get(at).cloned().unwrap_or_default();
        for (next, ai) in edges {
            if next == start {
                self.report(path, ai, out);
            } else if next > start && !on_path[next] {
                on_path[next] = true;
                path.push(next);
                self.dfs(start, next, path, on_path, out);
                path.pop();
                on_path[next] = false;
            }
        }
    }

    fn report(&mut self, path: &[usize], closing_agreement: usize, out: &mut Vec<Finding>) {
        if self.found >= MAX_CYCLES {
            self.truncated = true;
            return;
        }
        self.found += 1;
        let name = |i: usize| {
            self.spec.principals.get(i).map_or("?", |p| p.name.as_str())
        };
        let mut names: Vec<&str> = path.iter().map(|&i| name(i)).collect();
        if let Some(&first) = path.first() {
            names.push(name(first));
        }
        push(
            out,
            VRule::Cycles,
            vec![Key("agreements"), Index(closing_agreement)],
            format!(
                "currency cycle: {} — legal (transitive flows follow simple paths only, so \
                 value does not amplify around the loop), but worth knowing about",
                names.join(" -> ")
            ),
        );
    }
}

/// V4 — report every elementary currency cycle with its full path.
fn cycles(spec: &DeploymentSpec, out: &mut Vec<Finding>) {
    let n = spec.principals.len();
    let index = |name: &str| spec.principals.iter().position(|p| p.name == name);
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (ai, a) in spec.agreements.iter().enumerate() {
        if let (Some(i), Some(j)) = (index(&a.issuer), index(&a.holder)) {
            if let Some(row) = adj.get_mut(i) {
                row.push((j, ai));
            }
        }
    }
    let mut search = CycleSearch { spec, adj, found: 0, steps: 0, truncated: false };
    for s in 0..n {
        let mut path = vec![s];
        let mut on_path = vec![false; n];
        on_path[s] = true;
        search.dfs(s, s, &mut path, &mut on_path, out);
    }
    if search.truncated {
        push(
            out,
            VRule::Cycles,
            vec![Key("agreements")],
            format!("cycle report truncated after {MAX_CYCLES} cycles; the graph is densely cyclic"),
        );
    }
}

/// V8 — scenario link sanity: one link per redirector, every rate finite
/// and positive, byte scale positive, hop latency finite and non-negative.
fn link_sanity(sc: &ScenarioSpec, out: &mut Vec<Finding>) {
    let Some(net) = &sc.net else { return };
    let n = sc.deployment.redirector_tree.len();
    if net.links.len() != n {
        push(
            out,
            VRule::LinkSanity,
            vec![Key("net"), Key("links")],
            format!(
                "net declares {} links for a {n}-redirector tree; one link per redirector",
                net.links.len()
            ),
        );
    }
    for (i, l) in net.links.iter().enumerate() {
        if !(l.rate_bytes_per_sec.is_finite() && l.rate_bytes_per_sec > 0.0) {
            push(
                out,
                VRule::LinkSanity,
                vec![Key("net"), Key("links"), Index(i), Key("rate_bytes_per_sec")],
                format!(
                    "link rate must be a finite, positive number of bytes/second, got {}",
                    l.rate_bytes_per_sec
                ),
            );
        }
    }
    if !(net.unit_bytes.is_finite() && net.unit_bytes > 0.0) {
        push(
            out,
            VRule::LinkSanity,
            vec![Key("net"), Key("unit_bytes")],
            format!("unit_bytes must be a finite, positive byte count, got {}", net.unit_bytes),
        );
    }
    if !finite_nonneg(net.hop_latency) {
        push(
            out,
            VRule::LinkSanity,
            vec![Key("net"), Key("hop_latency")],
            format!(
                "hop_latency must be a finite, non-negative number of seconds, got {}",
                net.hop_latency
            ),
        );
    }
}

/// V9 — scenario timeline ordering: events sorted by `at` (non-decreasing)
/// and none scheduled past the run's duration.
fn timeline_order(sc: &ScenarioSpec, out: &mut Vec<Finding>) {
    for (i, ev) in sc.timeline.iter().enumerate() {
        if i > 0 {
            let prev = sc.timeline[i - 1].at();
            if ev.at() < prev {
                push(
                    out,
                    VRule::TimelineOrder,
                    vec![Key("timeline"), Index(i), Key("at")],
                    format!(
                        "timeline must be sorted by time: event {i} ({}) at {}s precedes \
                         event {} at {prev}s",
                        ev.kind(),
                        ev.at(),
                        i - 1
                    ),
                );
            }
        }
        if ev.at() > sc.deployment.duration {
            push(
                out,
                VRule::TimelineOrder,
                vec![Key("timeline"), Index(i), Key("at")],
                format!(
                    "event {i} ({}) is scheduled at {}s but the run ends at {}s: it never fires",
                    ev.kind(),
                    ev.at(),
                    sc.deployment.duration
                ),
            );
        }
    }
}

/// V10 — renegotiated agreements must re-pass the V2 bounds and V3
/// direct-solvency contracts. Renegotiations are replayed in timeline
/// order onto a copy of the agreement list, so each check sees the
/// agreement set as it will stand when the event fires.
fn renegotiation(sc: &ScenarioSpec, out: &mut Vec<Finding>) {
    let mut agreements = sc.deployment.agreements.clone();
    for (i, ev) in sc.timeline.iter().enumerate() {
        let TimelineEvent::Renegotiate { issuer, holder, lb, ub, .. } = ev else {
            continue;
        };
        let Some(slot) =
            agreements.iter().position(|a| &a.issuer == issuer && &a.holder == holder)
        else {
            push(
                out,
                VRule::Renegotiation,
                vec![Key("timeline"), Index(i)],
                format!("no declared agreement {issuer} -> {holder} to renegotiate"),
            );
            continue;
        };
        let mut bounds_ok = true;
        for (key, x) in [("lb", *lb), ("ub", *ub)] {
            if !(x.is_finite() && (0.0..=1.0).contains(&x)) {
                push(
                    out,
                    VRule::Renegotiation,
                    vec![Key("timeline"), Index(i), Key(key)],
                    format!("renegotiated {key} must be a fraction within [0, 1], got {x}"),
                );
                bounds_ok = false;
            }
        }
        if bounds_ok && lb > ub {
            push(
                out,
                VRule::Renegotiation,
                vec![Key("timeline"), Index(i), Key("lb")],
                format!("renegotiated lb {lb} exceeds ub {ub}"),
            );
            bounds_ok = false;
        }
        if !bounds_ok {
            continue;
        }
        agreements[slot].lb = *lb;
        agreements[slot].ub = *ub;
        let total_lb: f64 = agreements
            .iter()
            .filter(|a| &a.issuer == issuer && a.lb.is_finite() && a.lb > 0.0)
            .map(|a| a.lb)
            .sum();
        if total_lb > 1.0 + TOL {
            push(
                out,
                VRule::Renegotiation,
                vec![Key("timeline"), Index(i), Key("lb")],
                format!(
                    "after this renegotiation issuer '{issuer}' guarantees sum(lb) = \
                     {total_lb:.3} across its agreements, exceeding its whole capacity (1.0)"
                ),
            );
        }
    }
}

/// V7 — worst-case offered load per principal (each client's peak phase
/// rate, summed over its clients) vs its entitled mandatory + optional
/// share. Excess demand is legal — the scheduler defers or drops it — but
/// usually a misconfiguration.
fn load(spec: &DeploymentSpec, graph: &AgreementGraph, out: &mut Vec<Finding>) {
    let levels = graph.access_levels();
    for (pi, p) in spec.principals.iter().enumerate() {
        let mut demand = 0.0;
        let mut first_client = None;
        for (ci, c) in spec.clients.iter().enumerate() {
            if c.principal == p.name {
                if first_client.is_none() {
                    first_client = Some(ci);
                }
                demand += c.phases.iter().map(|&(_, r)| r).fold(0.0f64, f64::max);
            }
        }
        let Some(ci) = first_client else { continue };
        let id = PrincipalId(pi);
        let entitled = levels.mandatory(id) + levels.optional(id);
        if demand > entitled * (1.0 + TOL) + TOL {
            push(
                out,
                VRule::Load,
                vec![Key("clients"), Index(ci)],
                format!(
                    "worst-case offered load for '{}' is {demand:.1} req/s but its entitled \
                     mandatory+optional share is {entitled:.1} req/s: the excess will be \
                     deferred or dropped",
                    p.name
                ),
            );
        }
    }
}
