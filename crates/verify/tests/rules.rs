//! Fixture-driven verifier tests: every rule has a trigger fixture under
//! `examples/specs/` (also gated in `tier1.sh`) and a non-trigger, and
//! diagnostics must point at the exact `line:col` of the offending value.

use covenant_core::spec::DeploymentSpec;
use covenant_verify::{
    check_text, has_errors, resolve, verify_spec, Diagnostic, RuleMeta, Severity, VRule,
};

const VALID: &str = include_str!("../../../examples/specs/valid.json");
const V1: &str = include_str!("../../../examples/specs/v1_unknown_holder.json");
const V2: &str = include_str!("../../../examples/specs/v2_inverted_bounds.json");
const V3: &str = include_str!("../../../examples/specs/v3_oversubscribed.json");
const V4: &str = include_str!("../../../examples/specs/v4_mutual_cycle.json");
const V5: &str = include_str!("../../../examples/specs/v5_stale_tree.json");
const V6: &str = include_str!("../../../examples/specs/v6_short_prices.json");
const V7: &str = include_str!("../../../examples/specs/v7_overload.json");
const V8: &str = include_str!("../../../examples/specs/v8_bad_link_rate.json");
const V9: &str = include_str!("../../../examples/specs/v9_unordered_timeline.json");
const V10: &str = include_str!("../../../examples/specs/v10_insolvent_renegotiation.json");

fn check(text: &str) -> Vec<Diagnostic> {
    check_text("spec.json", text).expect("fixture parses and decodes")
}

/// 1-based (line, col) of `token` on the first line containing `line_pat`.
fn pos_of(text: &str, line_pat: &str, token: &str) -> (u32, u32) {
    for (i, l) in text.lines().enumerate() {
        if l.contains(line_pat) {
            if let Some(c) = l.find(token) {
                return ((i + 1) as u32, (c + 1) as u32);
            }
        }
    }
    panic!("{line_pat:?} / {token:?} not found in fixture");
}

#[test]
fn valid_fixture_passes_clean() {
    assert_eq!(check(VALID), Vec::new());
}

#[test]
fn every_bad_fixture_fires_exactly_its_rule() {
    for (text, expected) in [
        (V1, "V1"),
        (V2, "V2"),
        (V3, "V3"),
        (V4, "V4"),
        (V5, "V5"),
        (V6, "V6"),
        (V7, "V7"),
        (V8, "V8"),
        (V9, "V9"),
        (V10, "V10"),
    ] {
        let diags = check(text);
        assert!(!diags.is_empty(), "{expected} fixture must fire");
        for d in &diags {
            assert_eq!(d.rule.code(), expected, "unexpected rule in {expected} fixture: {d}");
            assert!(d.line > 0 && d.col > 0, "{expected} diagnostic must be positioned: {d}");
            assert_eq!(d.path, "spec.json");
        }
    }
}

#[test]
fn diagnostics_point_at_the_offending_token() {
    let cases = [
        // The unknown holder: the string value "Z".
        (V1, "\"holder\": \"Z\"", "\"Z\""),
        // The dead link: the zero rate itself.
        (V8, "\"rate_bytes_per_sec\": 0.0", "0.0"),
        // The out-of-order event: its `at` value.
        (V9, "\"at\": 3.0", "3.0"),
        // The insolvent renegotiation: the new lb.
        (V10, "\"lb\": 0.8", "0.8"),
        // The inverted bound: the lb number itself.
        (V2, "\"lb\": 0.9", "0.9"),
        // Oversubscription anchors at the last contributing lb.
        (V3, "\"lb\": 0.6", "0.6"),
        // The staleness overrun anchors at the edge delay.
        (V5, "\"tree_edge_delay\"", "0.05"),
        // The short vector: the prices array.
        (V6, "\"prices\"", "[1.0]"),
        // Overload anchors at the principal's first client object.
        (V7, "\"principal\": \"A\"", "{"),
    ];
    for (text, line_pat, token) in cases {
        let (line, col) = pos_of(text, line_pat, token);
        let diags = check(text);
        let d = diags.first().expect("fixture fires");
        assert_eq!((d.line, d.col), (line, col), "misplaced diagnostic: {d}");
    }
}

#[test]
fn warning_rules_do_not_count_as_errors() {
    for warn in [V4, V7] {
        let diags = check(warn);
        assert!(!diags.is_empty());
        assert!(!has_errors(&diags));
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }
    for err in [V1, V2, V3, V5, V6] {
        assert!(has_errors(&check(err)));
    }
}

#[test]
fn cycle_report_carries_the_full_path() {
    let diags = check(V4);
    let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains("A -> B -> A")),
        "cycle path missing: {messages:?}"
    );
}

#[test]
fn scenario_rule_variants_fire() {
    use covenant_core::ScenarioSpec;
    use covenant_verify::verify_scenario;
    let fires = |text: &str, rule: VRule| {
        let sc = ScenarioSpec::from_json(text).expect("scenario parses");
        let findings = verify_scenario(&sc);
        assert!(findings.iter().any(|f| f.rule == rule), "{rule:?} must fire: {findings:?}");
    };
    // V8: link count vs the redirector tree.
    let short = V8.replace("\"rate_bytes_per_sec\": 0.0", "\"rate_bytes_per_sec\": 1.0e6")
        .replace("\"duration\": 2.0", "\"duration\": 2.0, \"redirector_tree\": [null, 0]");
    fires(&short, VRule::LinkSanity);
    // V9: an event scheduled past the end of the run never fires.
    let late = V9.replace("\"at\": 3.0", "\"at\": 30.0");
    fires(&late, VRule::TimelineOrder);
    // V10: renegotiating an agreement that does not exist.
    let missing = V10.replace("\"holder\": \"A\", \"lb\": 0.8", "\"holder\": \"S\", \"lb\": 0.8");
    fires(&missing, VRule::Renegotiation);
    // V10: renegotiated bounds outside [0, 1].
    let inverted = V10.replace(
        "\"lb\": 0.8, \"ub\": 1.0}",
        "\"lb\": 0.9, \"ub\": 0.5}",
    );
    fires(&inverted, VRule::Renegotiation);
    // A well-ordered, solvent scenario passes all three clean.
    let good = V10.replace("\"lb\": 0.8", "\"lb\": 0.6");
    let sc = ScenarioSpec::from_json(&good).unwrap();
    assert_eq!(verify_scenario(&sc), Vec::new());
    // The allow list suppresses scenario rules like any other.
    let allowed = V9.replace("\"duration\": 10.0", "\"duration\": 10.0, \"allow\": [\"V9\"]");
    let sc = ScenarioSpec::from_json(&allowed).unwrap();
    assert_eq!(verify_scenario(&sc), Vec::new());
}

#[test]
fn allow_field_suppresses_a_rule_per_spec() {
    let allowed = V4.replace("\"duration\": 1.0", "\"duration\": 1.0, \"allow\": [\"V4\"]");
    assert_eq!(check(&allowed), Vec::new());
    // Unknown codes in the allow list are themselves a V1 finding.
    let bogus = V4.replace("\"duration\": 1.0", "\"duration\": 1.0, \"allow\": [\"V99\"]");
    let diags = check(&bogus);
    assert!(diags.iter().any(|d| d.rule == VRule::References), "{diags:?}");
}

#[test]
fn inline_triggers_for_structural_variants() {
    // Duplicate principal names (V1), self-agreement and duplicate pair
    // (V2), two roots / out-of-range parent / parent cycle (V5).
    let dup_name = r#"{
        "principals": [{"name": "S", "capacity": 1.0}, {"name": "S"}],
        "agreements": [], "clients": [], "duration": 1.0
    }"#;
    assert!(check(dup_name).iter().any(|d| d.rule == VRule::References));

    let self_deal = r#"{
        "principals": [{"name": "S", "capacity": 1.0}],
        "agreements": [{"issuer": "S", "holder": "S", "lb": 0.1, "ub": 0.2}],
        "clients": [], "duration": 1.0
    }"#;
    assert!(check(self_deal).iter().any(|d| d.rule == VRule::Agreements));

    let dup_pair = r#"{
        "principals": [{"name": "S", "capacity": 1.0}, {"name": "A"}],
        "agreements": [
            {"issuer": "S", "holder": "A", "lb": 0.1, "ub": 0.2},
            {"issuer": "S", "holder": "A", "lb": 0.2, "ub": 0.3}
        ],
        "clients": [], "duration": 1.0
    }"#;
    assert!(check(dup_pair).iter().any(|d| d.rule == VRule::Agreements));

    for tree in ["[null, null]", "[null, 9]", "[null, 2, 1]"] {
        let bad_tree = format!(
            r#"{{
                "principals": [{{"name": "S", "capacity": 1.0}}],
                "agreements": [], "clients": [], "duration": 1.0,
                "redirector_tree": {tree}
            }}"#
        );
        let diags = check(&bad_tree);
        assert!(
            diags.iter().any(|d| d.rule == VRule::Timing),
            "tree {tree} must fire V5: {diags:?}"
        );
    }
}

#[test]
fn unbacked_issuer_fires_and_backed_reseller_does_not() {
    // A zero-capacity issuer guaranteeing lb > 0 with no in-flow: V3.
    let unbacked = r#"{
        "principals": [{"name": "ghost"}, {"name": "A", "capacity": 10.0}],
        "agreements": [{"issuer": "ghost", "holder": "A", "lb": 0.5, "ub": 1.0}],
        "clients": [], "duration": 1.0
    }"#;
    let diags = check(unbacked);
    assert!(diags.iter().any(|d| d.rule == VRule::Solvency), "{diags:?}");
    // The valid fixture's `resale` principal is the non-trigger: zero
    // capacity, but transitively backed by S via lb 0.3 — no finding
    // (checked by valid_fixture_passes_clean).
}

#[test]
fn struct_level_findings_resolve_without_source() {
    // Specs built in Rust never had JSON positions; findings still carry
    // the JSON path in the message and line 0 / col 0.
    let mut spec = DeploymentSpec::from_json(VALID).expect("valid decodes");
    spec.principals[0].capacity = f64::NAN;
    let findings = verify_spec(&spec);
    assert!(!findings.is_empty());
    let diags = resolve(&findings, None, "inline");
    let d = diags.first().expect("finding");
    assert_eq!((d.line, d.col), (0, 0));
    assert!(d.message.contains("principals[0].capacity"), "{d}");
}

#[test]
fn finding_paths_render_json_style() {
    let spec = DeploymentSpec::from_json(V3).expect("decodes");
    let findings = verify_spec(&spec);
    let paths: Vec<String> = findings.iter().map(|f| f.path()).collect();
    assert!(paths.iter().any(|p| p == "agreements[1].lb"), "{paths:?}");
}
