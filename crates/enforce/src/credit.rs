//! Implicit queuing via per-window admission credits (§4.1, final design).
//!
//! Instead of holding requests in explicit queues (which bunches them at
//! window boundaries), the redirector decides *how many* requests each
//! principal may pass this window. Requests within quota are forwarded
//! immediately; the rest are implicitly queued by telling the client to
//! retry (L7 self-redirect) or parking the connection (L4). Fractional
//! quota remainders carry over so that rates like 13.5 requests/window
//! average out exactly.

use covenant_agreements::PrincipalId;
use covenant_sched::{Plan, Request};
use serde::{Deserialize, Serialize};

/// Outcome of an admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// Forward to the given server (principal id of the server owner).
    Admit {
        /// Target server index.
        server: usize,
    },
    /// Out of quota this window: defer (self-redirect / park).
    Defer,
}

/// Per-principal credit state for one redirector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreditGate {
    /// Remaining admission credit per principal for this window.
    credit: Vec<f64>,
    /// Remaining per-(principal, server) allocation for this window.
    alloc: Vec<Vec<f64>>,
    /// The plan rows as installed at the last roll (fallback server choice
    /// for fractional carry-over admissions after allocations drain).
    installed: Vec<Vec<f64>>,
    /// Cap on accumulated credit, in multiples of the window quota.
    burst_windows: f64,
    /// Last installed per-principal quota (for the burst cap).
    quota: Vec<f64>,
}

impl CreditGate {
    /// Creates a gate for `n` principals in the community setting, where
    /// every principal doubles as a potential server (the plan is an `n × n`
    /// matrix) — the shape every redirector in this codebase uses. Prefer
    /// this over [`Self::new`] to avoid the easy-to-misread `new(n, n)`.
    pub fn for_principals(n: usize) -> Self {
        Self::new(n, n)
    }

    /// Creates a gate for `n` principals over `n_servers` servers with the
    /// default burst cap of 2 windows' worth of credit.
    pub fn new(n: usize, n_servers: usize) -> Self {
        CreditGate {
            credit: vec![0.0; n],
            alloc: vec![vec![0.0; n_servers]; n],
            installed: vec![vec![0.0; n_servers]; n],
            burst_windows: 2.0,
            quota: vec![0.0; n],
        }
    }

    /// Overrides the burst cap (multiples of one window's quota a principal
    /// may accumulate while idle).
    pub fn with_burst_windows(mut self, w: f64) -> Self {
        assert!(w >= 1.0, "burst cap below one window starves carry-over");
        self.burst_windows = w;
        self
    }

    /// Installs the new window's plan: adds each principal's admitted quota
    /// to its credit (capped) and resets per-server allocations.
    pub fn roll_window(&mut self, plan: &Plan) {
        for (i, row) in plan.assignments.iter().enumerate() {
            let q: f64 = row.iter().sum();
            self.quota[i] = q;
            let cap = q * self.burst_windows;
            self.credit[i] = (self.credit[i] + q).min(cap.max(q));
            self.alloc[i].copy_from_slice(row);
            self.installed[i].copy_from_slice(row);
        }
    }

    /// Remaining credit for principal `i`.
    pub fn credit(&self, i: PrincipalId) -> f64 {
        self.credit[i.0]
    }

    /// Like [`Self::admit`], but prefers `preferred` server while it still
    /// has allocation — connection affinity "to the extent allowed by the
    /// sharing agreements" (the paper's SSL-session consideration, §4.2).
    pub fn admit_with_preference(&mut self, req: &Request, preferred: Option<usize>) -> Admission {
        let i = req.principal.0;
        if let Some(k) = preferred {
            if k < self.alloc[i].len()
                && self.alloc[i][k] + 1e-9 >= req.cost
                && self.credit[i] + 1e-9 >= req.cost
            {
                self.alloc[i][k] -= req.cost;
                self.credit[i] -= req.cost;
                debug_assert!(
                    self.credit[i] >= -1e-9,
                    "principal {i} credit overdrawn: {}",
                    self.credit[i]
                );
                return Admission::Admit { server: k };
            }
        }
        self.admit(req)
    }

    /// Attempts to admit `req`, consuming credit on success and choosing the
    /// server with the most remaining allocation.
    pub fn admit(&mut self, req: &Request) -> Admission {
        let i = req.principal.0;
        if self.credit[i] + 1e-9 < req.cost {
            return Admission::Defer;
        }
        // Prefer the server with the largest *positive* remaining
        // allocation; if every allocation is exhausted but credit remains
        // (fractional carry-over), fall back to the server with the largest
        // installed quota this window — never to an arbitrary index, which
        // could be a zero-capacity principal.
        let server = first_argmax_positive(&self.alloc[i])
            .or_else(|| first_argmax_positive(&self.installed[i]))
            .unwrap_or(0);
        self.alloc[i][server] = (self.alloc[i][server] - req.cost).max(0.0);
        self.credit[i] -= req.cost;
        debug_assert!(
            self.credit[i] >= -1e-9,
            "principal {i} credit overdrawn: {}",
            self.credit[i]
        );
        Admission::Admit { server }
    }
}

/// Index of the first maximum strictly-positive entry, or `None` if every
/// entry is ≤ 0.
fn first_argmax_positive(row: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (k, &v) in row.iter().enumerate() {
        if v > 0.0 && best.is_none_or(|(_, bv)| v > bv) {
            best = Some((k, v));
        }
    }
    best.map(|(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(id: u64, p: usize) -> Request {
        Request::unit(id, PrincipalId(p), 0.0)
    }

    fn plan(rows: Vec<Vec<f64>>) -> Plan {
        Plan { assignments: rows, theta: None, income: None }
    }

    #[test]
    fn admits_up_to_quota_then_defers() {
        let mut g = CreditGate::new(1, 1);
        g.roll_window(&plan(vec![vec![3.0]]));
        for id in 0..3 {
            assert!(matches!(g.admit(&unit(id, 0)), Admission::Admit { .. }));
        }
        assert_eq!(g.admit(&unit(9, 0)), Admission::Defer);
    }

    #[test]
    fn fractional_carry_over_averages_out() {
        // Quota 1.5/window, 2 requests offered per window: admit counts
        // should alternate 1, 2, 1, 2, … averaging 1.5.
        let mut g = CreditGate::new(1, 1);
        let mut admitted_per_window = Vec::new();
        let mut id = 0;
        for _ in 0..6 {
            g.roll_window(&plan(vec![vec![1.5]]));
            let mut n = 0;
            for _ in 0..2 {
                if matches!(g.admit(&unit(id, 0)), Admission::Admit { .. }) {
                    n += 1;
                }
                id += 1;
            }
            admitted_per_window.push(n);
        }
        let total: i32 = admitted_per_window.iter().sum();
        assert_eq!(total, 9, "windows: {admitted_per_window:?}");
    }

    #[test]
    fn burst_cap_limits_idle_accumulation() {
        let mut g = CreditGate::new(1, 1).with_burst_windows(2.0);
        for _ in 0..10 {
            g.roll_window(&plan(vec![vec![5.0]]));
        }
        // Credit capped at 2 windows' quota despite 10 idle windows.
        assert!((g.credit(PrincipalId(0)) - 10.0).abs() < 1e-9);
        let mut admitted = 0;
        for id in 0..100 {
            if matches!(g.admit(&unit(id, 0)), Admission::Admit { .. }) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 10);
    }

    #[test]
    fn servers_chosen_by_remaining_allocation() {
        let mut g = CreditGate::new(1, 2);
        g.roll_window(&plan(vec![vec![1.0, 2.0]]));
        let mut to = vec![0, 0];
        for id in 0..3 {
            if let Admission::Admit { server } = g.admit(&unit(id, 0)) {
                to[server] += 1;
            }
        }
        assert_eq!(to, vec![1, 2]);
    }

    #[test]
    fn costly_request_needs_matching_credit() {
        let mut g = CreditGate::new(1, 1);
        g.roll_window(&plan(vec![vec![3.0]]));
        let big =
            Request { id: covenant_sched::RequestId(1), principal: PrincipalId(0), arrival: 0.0, cost: 4.0 };
        assert_eq!(g.admit(&big), Admission::Defer);
        g.roll_window(&plan(vec![vec![3.0]])); // credit now 6 ≥ 4
        assert!(matches!(g.admit(&big), Admission::Admit { .. }));
    }

    #[test]
    fn affinity_preference_honored_while_allocated() {
        let mut g = CreditGate::new(1, 2);
        g.roll_window(&plan(vec![vec![1.0, 2.0]]));
        // Prefer server 0 (the smaller allocation): honored while it lasts.
        assert_eq!(
            g.admit_with_preference(&unit(0, 0), Some(0)),
            Admission::Admit { server: 0 }
        );
        // Server 0 exhausted: falls back to server 1 despite preference.
        assert_eq!(
            g.admit_with_preference(&unit(1, 0), Some(0)),
            Admission::Admit { server: 1 }
        );
        assert_eq!(
            g.admit_with_preference(&unit(2, 0), Some(0)),
            Admission::Admit { server: 1 }
        );
        assert_eq!(g.admit_with_preference(&unit(3, 0), Some(0)), Admission::Defer);
    }

    #[test]
    fn preference_out_of_range_falls_back() {
        let mut g = CreditGate::new(1, 1);
        g.roll_window(&plan(vec![vec![1.0]]));
        assert!(matches!(
            g.admit_with_preference(&unit(0, 0), Some(99)),
            Admission::Admit { server: 0 }
        ));
    }

    #[test]
    fn principals_are_independent() {
        let mut g = CreditGate::new(2, 1);
        g.roll_window(&plan(vec![vec![1.0], vec![0.0]]));
        assert!(matches!(g.admit(&unit(0, 0)), Admission::Admit { .. }));
        assert_eq!(g.admit(&unit(1, 1)), Admission::Defer);
    }
}
