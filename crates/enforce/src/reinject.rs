//! Shared FIFO reinjection of parked work through the credit gate.
//!
//! Every parking transport — the simulator's CreditPark queues, the L7
//! explicit redirector's waiting handler threads, the L4 proxy's parked
//! TCP connections — drains the same way at each window boundary: walk the
//! principals, pop parked items in FIFO order, admit each through the
//! fresh credit, and stop a principal's drain at the first deferral (the
//! head of the queue must go first or FIFO is violated). This module is
//! that loop, written once.

use std::collections::VecDeque;

/// A per-principal FIFO store of parked work items.
pub trait ParkedQueue<T> {
    /// Pops the oldest parked item for `principal`, if any.
    fn pop(&mut self, principal: usize) -> Option<T>;
    /// Returns an item to the *front* of `principal`'s queue (undo of a
    /// failed admission attempt, preserving FIFO order).
    fn unpop(&mut self, principal: usize, item: T);
}

impl<T> ParkedQueue<T> for Vec<VecDeque<T>> {
    fn pop(&mut self, principal: usize) -> Option<T> {
        self[principal].pop_front()
    }

    fn unpop(&mut self, principal: usize, item: T) {
        self[principal].push_front(item)
    }
}

/// Drains parked work through a fresh window's credit, FIFO per principal.
///
/// For each of the `n_principals` queues in `queue`, pops items in order
/// and calls `admit(principal, &item)`; an admitted item (with its chosen
/// server) is handed to `forward`, while the first deferred item is pushed
/// back to the queue front and ends that principal's drain for this window.
pub fn reinject_fifo<T, Q: ParkedQueue<T> + ?Sized>(
    n_principals: usize,
    queue: &mut Q,
    mut admit: impl FnMut(usize, &T) -> Option<usize>,
    mut forward: impl FnMut(T, usize),
) {
    for i in 0..n_principals {
        while let Some(item) = queue.pop(i) {
            match admit(i, &item) {
                Some(server) => forward(item, server),
                None => {
                    queue.unpop(i, item);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_fifo_until_first_deferral_per_principal() {
        let mut q: Vec<VecDeque<u32>> = vec![
            VecDeque::from([1, 2, 3]),
            VecDeque::from([10, 20]),
        ];
        // Principal 0 has 2 credits, principal 1 has 0.
        let mut credits = [2u32, 0];
        let mut out = Vec::new();
        reinject_fifo(
            2,
            &mut q,
            |p, _item| {
                if credits[p] > 0 {
                    credits[p] -= 1;
                    Some(p)
                } else {
                    None
                }
            },
            |item, server| out.push((item, server)),
        );
        assert_eq!(out, vec![(1, 0), (2, 0)]);
        // Deferred heads are back in place, FIFO intact.
        assert_eq!(q[0], VecDeque::from([3]));
        assert_eq!(q[1], VecDeque::from([10, 20]));
    }

    #[test]
    fn empty_queues_are_a_no_op() {
        let mut q: Vec<VecDeque<u32>> = vec![VecDeque::new(); 3];
        let mut calls = 0;
        reinject_fifo(3, &mut q, |_, _| {
            calls += 1;
            Some(0)
        }, |_, _| {});
        assert_eq!(calls, 0);
    }
}
