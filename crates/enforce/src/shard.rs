//! Lock-free observability for sharded data planes.
//!
//! A reactor shard owns its enforcement core exclusively — no lock to
//! snapshot counters through — so it exports them by *storing* into a
//! shared atomic block after each wake, and observers read whenever they
//! like. Relaxed ordering everywhere: these are monotone counters, and a
//! reader one store behind is indistinguishable from having read a
//! microsecond earlier.

use crate::EnforcementCounters;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic mirror of one shard's [`EnforcementCounters`] plus the
/// reactor-level batching counters the sharded JSON payload reports.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Readiness wakes processed (epoll returns with ≥1 event or an
    /// elapsed window boundary).
    reactor_wakes: AtomicU64,
    /// Admission verdicts issued across all wakes (admitted + deferred);
    /// `batched_verdicts / reactor_wakes` is the mean verdict batch one
    /// wake amortizes its syscalls over.
    batched_verdicts: AtomicU64,
    /// Connections shed with RST at a hard cap (connection table, relay
    /// table, park overflow, legacy live-thread limit) — work refused
    /// before it ever reached admission.
    shed: AtomicU64,
    admitted: AtomicU64,
    deferred: AtomicU64,
    parked: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    plan_cache_evictions: AtomicU64,
    lp_solves: AtomicU64,
    lp_pivots: AtomicU64,
    lp_warm_hits: AtomicU64,
    lp_cold_fallbacks: AtomicU64,
}

impl ShardStats {
    /// Fresh zeroed stats.
    pub fn new() -> ShardStats {
        ShardStats::default()
    }

    /// Records one reactor wake that issued `verdicts` admission verdicts.
    pub fn record_wake(&self, verdicts: u64) {
        self.reactor_wakes.fetch_add(1, Ordering::Relaxed);
        self.batched_verdicts.fetch_add(verdicts, Ordering::Relaxed);
    }

    /// Records one connection shed with RST at a hard cap.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the shard core's current counters.
    pub fn store_counters(&self, c: &EnforcementCounters) {
        self.admitted.store(c.admitted, Ordering::Relaxed);
        self.deferred.store(c.deferred, Ordering::Relaxed);
        self.parked.store(c.parked, Ordering::Relaxed);
        self.plan_cache_hits.store(c.plan_cache_hits, Ordering::Relaxed);
        self.plan_cache_misses.store(c.plan_cache_misses, Ordering::Relaxed);
        self.plan_cache_evictions.store(c.plan_cache_evictions, Ordering::Relaxed);
        self.lp_solves.store(c.lp_solves, Ordering::Relaxed);
        self.lp_pivots.store(c.lp_pivots, Ordering::Relaxed);
        self.lp_warm_hits.store(c.lp_warm_hits, Ordering::Relaxed);
        self.lp_cold_fallbacks.store(c.lp_cold_fallbacks, Ordering::Relaxed);
    }

    /// A point-in-time copy for reporting.
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            counters: EnforcementCounters {
                admitted: self.admitted.load(Ordering::Relaxed),
                deferred: self.deferred.load(Ordering::Relaxed),
                parked: self.parked.load(Ordering::Relaxed),
                plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
                plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
                plan_cache_evictions: self.plan_cache_evictions.load(Ordering::Relaxed),
                lp_solves: self.lp_solves.load(Ordering::Relaxed),
                lp_pivots: self.lp_pivots.load(Ordering::Relaxed),
                lp_warm_hits: self.lp_warm_hits.load(Ordering::Relaxed),
                lp_cold_fallbacks: self.lp_cold_fallbacks.load(Ordering::Relaxed),
            },
            reactor_wakes: self.reactor_wakes.load(Ordering::Relaxed),
            batched_verdicts: self.batched_verdicts.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// One shard's counters at a point in time (see [`ShardStats::snapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// The enforcement core's counters.
    pub counters: EnforcementCounters,
    /// Readiness wakes processed.
    pub reactor_wakes: u64,
    /// Verdicts issued across all wakes.
    pub batched_verdicts: u64,
    /// Connections shed with RST at a hard cap.
    pub shed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mirrors_stores() {
        let stats = ShardStats::new();
        stats.record_wake(3);
        stats.record_wake(5);
        stats.record_shed();
        let counters = EnforcementCounters { admitted: 7, deferred: 1, ..Default::default() };
        stats.store_counters(&counters);
        let snap = stats.snapshot();
        assert_eq!(snap.reactor_wakes, 2);
        assert_eq!(snap.batched_verdicts, 8);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.counters, counters);
    }
}
