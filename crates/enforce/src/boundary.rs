//! Window-boundary alignment shared by every periodic roller.
//!
//! Both the coordination daemon's ticker thread and the wire transport's
//! round timeout need the same policy after a stall: *skip* missed
//! boundaries and resume on the aligned grid, never replay them
//! back-to-back. Quotas are per-window; a catch-up burst would install
//! several windows of credit at once — exactly what the agreements bound.

use std::time::{Duration, Instant};

/// The boundary after `fired` that a periodic roller should act on next,
/// given that it is currently `now`.
///
/// Normally that is simply `fired + window`. But if the process stalled
/// (scheduler hiccup, VM freeze, suspended laptop) past one or more
/// boundaries, the missed windows are *skipped*, jumping to the first
/// aligned boundary after `now`.
pub fn next_aligned_boundary(fired: Instant, now: Instant, window: Duration) -> Instant {
    let next = fired + window;
    if next > now {
        return next;
    }
    let behind = now.duration_since(next).as_nanos();
    let w = window.as_nanos().max(1);
    let skip = (behind / w + 1).min(u128::from(u32::MAX)) as u32;
    next + window * skip
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_skips_missed_windows_instead_of_bursting() {
        let base = Instant::now();
        let w = Duration::from_millis(100);
        // On time: the very next boundary.
        assert_eq!(
            next_aligned_boundary(base, base + Duration::from_millis(50), w),
            base + w
        );
        // Exactly at the boundary still schedules the next one.
        assert_eq!(next_aligned_boundary(base, base + w, w), base + 2 * w);
        // A 1.35 s stall skips 13 whole windows and resumes on the aligned
        // grid right after `now` — no catch-up burst.
        let next = next_aligned_boundary(base, base + Duration::from_millis(1350), w);
        assert_eq!(next, base + 14 * w);
        // Degenerate zero window must not divide by zero.
        let z = next_aligned_boundary(base, base + w, Duration::ZERO);
        assert!(z <= base + w);
    }

    #[test]
    fn resumed_grid_stays_aligned_to_the_original_epoch() {
        let base = Instant::now();
        let w = Duration::from_millis(10);
        let mut fired = base;
        // Stall for 123 ms, then run on time: every subsequent boundary is
        // still base + k*w for integer k.
        fired = next_aligned_boundary(fired, base + Duration::from_millis(123), w);
        assert_eq!(fired, base + 13 * w);
        fired = next_aligned_boundary(fired, fired, w);
        assert_eq!(fired, base + 14 * w);
    }
}
