//! Explicit per-principal FIFO queues (the paper's first L7 implementation).
//!
//! Incoming requests are enqueued and, at the start of each window, a subset
//! is dequeued according to the solved [`Plan`]. The paper found that this
//! explicit scheme *bunches* requests at window boundaries (§4.1) — we keep
//! it both as a baseline for that experiment and because the Layer-4
//! redirector's kernel queues are exactly this structure.

use covenant_agreements::PrincipalId;
use covenant_sched::{Plan, Request};
use std::collections::VecDeque;

/// Per-principal FIFO request queues.
#[derive(Debug, Clone, Default)]
pub struct PrincipalQueues {
    queues: Vec<VecDeque<Request>>,
    /// Unspent fractional budget carried to the next window while the
    /// queue is backlogged (so a 2.5-per-window plan averages 2.5, not 2).
    carry: Vec<f64>,
}

/// A dispatched request with its assigned server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dispatch {
    /// The request released this window.
    pub request: Request,
    /// Index of the server (principal id) it is forwarded to.
    pub server: usize,
}

impl PrincipalQueues {
    /// Creates queues for `n` principals.
    pub fn new(n: usize) -> Self {
        PrincipalQueues {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            carry: vec![0.0; n],
        }
    }

    /// Number of principals.
    pub fn n_principals(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a request on its principal's queue.
    pub fn push(&mut self, req: Request) {
        self.queues[req.principal.0].push_back(req);
    }

    /// Cost-weighted queue lengths `n_i` (the LP inputs).
    pub fn lengths(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.lengths_into(&mut out);
        out
    }

    /// Writes the cost-weighted queue lengths into `out` (cleared first),
    /// reusing its allocation.
    pub fn lengths_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.queues.iter().map(|q| q.iter().map(|r| r.cost).sum::<f64>()));
    }

    /// Number of queued requests for one principal.
    pub fn len(&self, i: PrincipalId) -> usize {
        self.queues[i.0].len()
    }

    /// True when every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Total queued requests across principals.
    pub fn total_len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Releases requests according to `plan` (a *local* plan — already
    /// scaled in the distributed setting), assigning each released request
    /// to the plan's servers by remaining allocation. FIFO order within each
    /// principal. Returns the dispatches in release order.
    pub fn release(&mut self, plan: &Plan) -> Vec<Dispatch> {
        let mut out = Vec::new();
        for (i, row) in plan.assignments.iter().enumerate() {
            let mut alloc = row.clone();
            let mut budget: f64 = row.iter().sum::<f64>() + self.carry[i];
            while self.queues[i].front().is_some_and(|front| front.cost <= budget + 1e-9) {
                let Some(req) = self.queues[i].pop_front() else {
                    break;
                };
                // Assign to the server with the largest remaining
                // allocation; when only carried-over budget remains, use
                // the plan's largest installed allocation rather than an
                // arbitrary index.
                let server = first_argmax_positive(&alloc)
                    .or_else(|| first_argmax_positive(row))
                    .unwrap_or(0);
                alloc[server] = (alloc[server] - req.cost).max(0.0);
                budget -= req.cost;
                out.push(Dispatch { request: req, server });
            }
            // Conservation: the release loop may never overdraw the
            // window's budget (plan allocation plus carried remainder).
            debug_assert!(budget >= -1e-9, "principal {i} release overdrew budget: {budget}");
            // Carry the blocked remainder only while demand persists;
            // an empty queue's unused budget is genuinely lost capacity.
            self.carry[i] = if self.queues[i].is_empty() { 0.0 } else { budget };
        }
        out
    }

    /// Pops the head of principal `i`'s queue, if any (used by the L4
    /// parking drain, where the credit gate decides admission per request).
    pub fn release_one(&mut self, i: usize) -> Option<Request> {
        self.queues[i].pop_front()
    }

    /// Returns a request to the *front* of its principal's queue (undo of a
    /// failed [`Self::release_one`] admission attempt, preserving FIFO).
    pub fn push_front(&mut self, req: Request) {
        self.queues[req.principal.0].push_front(req);
    }

    /// Drops every queued request older than `horizon` seconds at time
    /// `now`, returning the dropped requests (clients time out and retry;
    /// models the L7 self-redirect loop abandoning).
    pub fn expire(&mut self, now: f64, horizon: f64) -> Vec<Request> {
        let mut dropped = Vec::new();
        for q in &mut self.queues {
            while q.front().is_some_and(|front| now - front.arrival > horizon) {
                let Some(req) = q.pop_front() else {
                    break;
                };
                dropped.push(req);
            }
        }
        dropped
    }
}

impl crate::ParkedQueue<Request> for PrincipalQueues {
    fn pop(&mut self, principal: usize) -> Option<Request> {
        self.release_one(principal)
    }

    fn unpop(&mut self, _principal: usize, item: Request) {
        self.push_front(item)
    }
}

/// Index of the first maximum strictly-positive entry, or `None` if every
/// entry is ≤ 0.
fn first_argmax_positive(row: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (k, &v) in row.iter().enumerate() {
        if v > 0.0 && best.is_none_or(|(_, bv)| v > bv) {
            best = Some((k, v));
        }
    }
    best.map(|(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, p: usize, t: f64) -> Request {
        Request::unit(id, PrincipalId(p), t)
    }

    #[test]
    fn push_and_lengths() {
        let mut q = PrincipalQueues::new(2);
        q.push(req(1, 0, 0.0));
        q.push(req(2, 0, 0.1));
        q.push(req(3, 1, 0.2));
        assert_eq!(q.lengths(), vec![2.0, 1.0]);
        assert_eq!(q.len(PrincipalId(0)), 2);
        assert_eq!(q.total_len(), 3);
        assert!(!q.is_empty());
    }

    #[test]
    fn release_respects_plan_and_fifo() {
        let mut q = PrincipalQueues::new(2);
        for id in 0..5 {
            q.push(req(id, 0, id as f64 * 0.01));
        }
        q.push(req(100, 1, 0.0));
        let plan = Plan { assignments: vec![vec![2.0, 1.0], vec![0.0, 0.0]], theta: None, income: None };
        let dispatched = q.release(&plan);
        assert_eq!(dispatched.len(), 3);
        // FIFO: ids 0, 1, 2 released; principal 1 untouched.
        let ids: Vec<u64> = dispatched.iter().map(|d| d.request.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(q.len(PrincipalId(0)), 2);
        assert_eq!(q.len(PrincipalId(1)), 1);
        // Server assignment never exceeds per-server allocation by count.
        let to_0 = dispatched.iter().filter(|d| d.server == 0).count();
        let to_1 = dispatched.iter().filter(|d| d.server == 1).count();
        assert_eq!(to_0, 2);
        assert_eq!(to_1, 1);
    }

    #[test]
    fn release_with_fractional_budget_floors() {
        let mut q = PrincipalQueues::new(1);
        for id in 0..4 {
            q.push(req(id, 0, 0.0));
        }
        let plan = Plan { assignments: vec![vec![2.7]], theta: None, income: None };
        let dispatched = q.release(&plan);
        // Unit-cost requests: only 2 fit a 2.7 budget.
        assert_eq!(dispatched.len(), 2);
    }

    #[test]
    fn costly_request_blocks_until_budget() {
        let mut q = PrincipalQueues::new(1);
        q.push(Request {
            id: covenant_sched::RequestId(1),
            principal: PrincipalId(0),
            arrival: 0.0,
            cost: 5.0,
        });
        let small = Plan { assignments: vec![vec![3.0]], theta: None, income: None };
        assert!(q.release(&small).is_empty());
        let big = Plan { assignments: vec![vec![5.0]], theta: None, income: None };
        assert_eq!(q.release(&big).len(), 1);
    }

    #[test]
    fn fractional_budget_carries_while_backlogged() {
        // 2.5 per window against a persistent backlog must average 2.5:
        // releases go 2, 3, 2, 3, …
        let mut q = PrincipalQueues::new(1);
        let mut id = 0;
        let plan = Plan { assignments: vec![vec![2.5]], theta: None, income: None };
        let mut released = Vec::new();
        for _ in 0..4 {
            for _ in 0..5 {
                q.push(req(id, 0, 0.0));
                id += 1;
            }
            released.push(q.release(&plan).len());
        }
        assert_eq!(released.iter().sum::<usize>(), 10, "released {released:?}");
    }

    #[test]
    fn carry_resets_when_queue_drains() {
        let mut q = PrincipalQueues::new(1);
        q.push(req(0, 0, 0.0));
        let plan = Plan { assignments: vec![vec![5.0]], theta: None, income: None };
        assert_eq!(q.release(&plan).len(), 1);
        // Queue drained: the unused 4.0 must not accumulate.
        for _ in 0..3 {
            assert!(q.release(&plan).is_empty());
        }
        for id in 1..=20 {
            q.push(req(id, 0, 0.0));
        }
        // Only one window's budget (5) available, not 4 windows' worth.
        assert_eq!(q.release(&plan).len(), 5);
    }

    #[test]
    fn expire_drops_old_requests_only() {
        let mut q = PrincipalQueues::new(1);
        q.push(req(1, 0, 0.0));
        q.push(req(2, 0, 5.0));
        let dropped = q.expire(8.0, 4.0);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].id.0, 1);
        assert_eq!(q.total_len(), 1);
    }
}
