//! EWMA arrival-rate estimation for implicit queuing.
//!
//! The implicit (credit-gate) scheme runs the LP on *estimated* queue
//! lengths: the expected number of arrivals in the coming window, smoothed
//! over recent windows so a single bursty window does not whipsaw the plan.

use serde::{Deserialize, Serialize};

/// Exponentially-weighted moving-average estimator of per-principal demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateEstimator {
    /// Smoothing factor in `(0, 1]`; 1 = use only the last window.
    alpha: f64,
    /// Smoothed arrivals per window, per principal.
    per_window: Vec<f64>,
    /// Whether any sample has been folded in yet (first sample seeds the
    /// average instead of decaying from zero).
    primed: bool,
}

impl RateEstimator {
    /// Creates an estimator for `n` principals with smoothing factor
    /// `alpha` (the paper's prototypes react within a couple of windows, so
    /// a fairly responsive default like 0.5 is appropriate).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        RateEstimator { alpha, per_window: vec![0.0; n], primed: false }
    }

    /// Folds in the arrivals observed in the window that just ended
    /// (cost-weighted counts per principal).
    pub fn observe(&mut self, arrivals: &[f64]) {
        assert_eq!(arrivals.len(), self.per_window.len());
        if !self.primed {
            self.per_window.copy_from_slice(arrivals);
            self.primed = true;
            return;
        }
        for (e, &a) in self.per_window.iter_mut().zip(arrivals) {
            *e = self.alpha * a + (1.0 - self.alpha) * *e;
        }
    }

    /// Estimated demand (requests per window) for the coming window — the
    /// `n_i` inputs to the LP in implicit mode.
    pub fn estimates(&self) -> &[f64] {
        &self.per_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_seeds() {
        let mut e = RateEstimator::new(2, 0.3);
        e.observe(&[10.0, 4.0]);
        assert_eq!(e.estimates(), &[10.0, 4.0]);
    }

    #[test]
    fn converges_to_steady_rate() {
        let mut e = RateEstimator::new(1, 0.5);
        for _ in 0..20 {
            e.observe(&[13.5]);
        }
        assert!((e.estimates()[0] - 13.5).abs() < 1e-6);
    }

    #[test]
    fn decays_after_load_stops() {
        let mut e = RateEstimator::new(1, 0.5);
        e.observe(&[100.0]);
        for _ in 0..12 {
            e.observe(&[0.0]);
        }
        assert!(e.estimates()[0] < 0.1);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = RateEstimator::new(1, 1.0);
        e.observe(&[5.0]);
        e.observe(&[9.0]);
        assert_eq!(e.estimates(), &[9.0]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        let _ = RateEstimator::new(1, 0.0);
    }
}
