//! The transport-agnostic per-redirector enforcement state machine.
//!
//! The paper's central claim (§3–§4) is that the *same* windowed admission
//! algorithm enforces sharing agreements whether it runs behind an L7
//! redirector, an L4 proxy, or a simulator. [`EnforcementCore`] is that
//! algorithm, written once: a [`WindowScheduler`] plus the mode-specific
//! queuing state ([`CreditGate`] / [`PrincipalQueues`]), demand estimation,
//! and admitted/deferred accounting. Transports differ only in the
//! [`CoordinationView`] they plug in (the simulator's delayed combining
//! tree vs. the live coordinator) and in how they carry the two entry
//! points' verdicts back to clients: [`EnforcementCore::on_arrival`] on the
//! request path and [`EnforcementCore::on_window_tick`] at each window
//! boundary.
//!
//! # Window tick order
//!
//! Every tick runs the same sequence on every transport:
//!
//! 1. fold the finished window's arrivals into the EWMA estimator;
//! 2. compute local demand for the coming window (mode-specific, plus any
//!    externally-parked backlog hint);
//! 3. **read** the coordination view (the freshest *previously published*
//!    global aggregate — never this round's own publication);
//! 4. solve the window plan (conservative fallback while the view is
//!    still empty);
//! 5. **publish** local demand into the coordination view;
//! 6. install the plan: release queued work (explicit), refresh credits
//!    (credit modes), and FIFO-reinject parked work (park mode).
//!
//! Read-before-publish makes the live tree exactly one window stale — the
//! same staleness the simulator's centralized once-per-tick aggregation
//! produces — which is what lets a live deployment and a simulation of the
//! same scenario make *identical* per-window admission decisions.

use crate::{reinject_fifo, Admission, CreditGate, PrincipalQueues, RateEstimator};
use covenant_agreements::{AccessLevels, PrincipalId};
use covenant_sched::{Plan, Request, SchedulerConfig, WindowScheduler};
use covenant_tree::DelayedView;
use serde::{Deserialize, Serialize};
use std::rc::Rc;

/// EWMA smoothing factor for demand estimation: the paper's prototypes
/// react within a couple of 100 ms windows, so weigh the latest window
/// half.
const DEMAND_EWMA_ALPHA: f64 = 0.5;

/// How a redirector holds back requests that exceed the current window's
/// allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueMode {
    /// Explicit per-principal queues: every request is enqueued and a
    /// window-sized batch is released at each tick (the paper's first L7
    /// implementation, which bunches requests — §4.1).
    Explicit,
    /// Credit gate with client retry: in-quota requests forward
    /// immediately; the rest are answered with a self-redirect and the
    /// client retries after `retry_delay` seconds (the final L7 scheme).
    CreditRetry {
        /// Client retry delay in seconds (one HTTP round trip; keep well
        /// under the scheduling window — a delay resonant with the window
        /// cadence can phase-lock deferred bursts against the quota refresh).
        retry_delay: f64,
    },
    /// Credit gate with parking: in-quota requests forward immediately;
    /// the rest park in a per-principal queue that is drained by later
    /// windows' credits (the L4 kernel-queue scheme).
    CreditPark,
}

/// What happened to a request when it reached the redirector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalOutcome {
    /// Admitted and forwarded to server `server` immediately.
    Forward {
        /// Target server index (principal id of the owner).
        server: usize,
    },
    /// Out of quota: tell the client to retry (L7 self-redirect).
    Defer,
    /// Held at the redirector (explicit queue or L4 parking queue).
    Queued,
}

/// The coordination substrate a redirector publishes demand into and reads
/// aggregated global demand back from.
///
/// Implementations abstract the two deployments: the simulator's
/// [`DelayedCoordination`] (centralized once-per-tick aggregation delivered
/// through a [`DelayedView`]) and the live coordinator tree (see
/// `covenant_coord`). The contract both must satisfy: a [`read`] at time
/// `now` never observes a [`publish`] from the same `now` — publications
/// become visible strictly later, so every node plans on equally-stale
/// information regardless of roll order within a window.
///
/// [`read`]: CoordinationView::read
/// [`publish`]: CoordinationView::publish
pub trait CoordinationView {
    /// The freshest globally-aggregated demand visible at `now`, if any
    /// has arrived yet.
    fn read(&mut self, now: f64) -> Option<&[f64]>;
    /// Publishes this node's local demand for the coming window at `now`.
    fn publish(&mut self, now: f64, demand: &[f64]);
}

/// The simulator's coordination view: a lagged [`DelayedView`] of the
/// centrally-aggregated demand, plus an outbox the engine collects after
/// each tick.
///
/// The simulation aggregates once per window boundary — every node ticks,
/// then the engine sums the outboxes over the combining tree and delivers
/// one shared aggregate (`Rc`) into every node's view. `publish` therefore
/// only records the demand locally; delivery happens via
/// [`DelayedCoordination::deliver`].
#[derive(Debug)]
pub struct DelayedCoordination {
    view: DelayedView<Rc<Vec<f64>>>,
    outbox: Vec<f64>,
}

impl DelayedCoordination {
    /// A view whose delivered aggregates become visible `lag` seconds
    /// after delivery.
    pub fn new(lag: f64) -> Self {
        DelayedCoordination { view: DelayedView::new(lag), outbox: Vec::new() }
    }

    /// The demand published at the last tick (the combining tree's input
    /// for this node).
    pub fn outbox(&self) -> &[f64] {
        &self.outbox
    }

    /// Delivers the centrally-computed aggregate at time `now`; it becomes
    /// readable after this view's lag.
    pub fn deliver(&mut self, now: f64, aggregate: Rc<Vec<f64>>) {
        self.view.publish(now, aggregate);
    }
}

impl CoordinationView for DelayedCoordination {
    fn read(&mut self, now: f64) -> Option<&[f64]> {
        self.view.read(now).map(|v| v.as_slice())
    }

    fn publish(&mut self, _now: f64, demand: &[f64]) {
        self.outbox.clear();
        self.outbox.extend_from_slice(demand);
    }
}

/// A point-in-time snapshot of one enforcement core's counters, shaped for
/// the shared observability payload (`covenant_core::live_counters_json`
/// mirrors `sim_counters_json` with these fields).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnforcementCounters {
    /// Requests admitted (forwarded to a server).
    pub admitted: u64,
    /// Requests deferred (self-redirected / refused this window).
    pub deferred: u64,
    /// Work currently parked awaiting credit (core-internal queues;
    /// transports that park externally add their own depth on top).
    pub parked: u64,
    /// Windows that replayed a memoized plan instead of running the LP.
    pub plan_cache_hits: u64,
    /// Windows that ran the LP.
    pub plan_cache_misses: u64,
    /// Plan-cache entries pushed out by the LRU cap.
    pub plan_cache_evictions: u64,
    /// Simplex solves performed (warm revised plus dense tableau).
    pub lp_solves: u64,
    /// Simplex pivots performed (warm revised plus dense tableau).
    pub lp_pivots: u64,
    /// Windows solved by reusing the previous window's optimal basis.
    pub lp_warm_hits: u64,
    /// Windows the warm solver restarted cold (first window of a shape,
    /// level change, numerical recovery) or handed to the dense tableau.
    pub lp_cold_fallbacks: u64,
}

/// The full per-redirector admission/window state machine, transport- and
/// deployment-agnostic.
///
/// One instance enforces the sharing agreements at one redirector. The
/// data plane calls [`on_arrival`] (or [`readmit`] for parked work) per
/// request; the control plane calls [`on_window_tick`] every scheduling
/// window. Everything else — LP planning, credits, queues, estimation,
/// counters — is internal.
///
/// [`on_arrival`]: Self::on_arrival
/// [`readmit`]: Self::readmit
/// [`on_window_tick`]: Self::on_window_tick
#[derive(Debug)]
pub struct EnforcementCore<V> {
    scheduler: WindowScheduler,
    mode: QueueMode,
    /// Explicit / parking queues (unused in pure credit-retry mode).
    queues: PrincipalQueues,
    /// Credit gate (unused in explicit mode).
    gate: CreditGate,
    estimator: RateEstimator,
    /// Cost-weighted arrivals since the last tick.
    arrivals_this_window: Vec<f64>,
    /// Reused demand buffer (steady state allocates nothing).
    demand_buf: Vec<f64>,
    coordination: V,
    last_plan: Plan,
    admitted: u64,
    deferred: u64,
    /// Debug-build conservation audit (see [`ConservationAudit`]).
    #[cfg(debug_assertions)]
    audit: ConservationAudit,
}

/// Debug-build conservation bookkeeping: the cost admitted through the
/// credit gate within one window may never exceed the credit that was
/// available when the window's plan was installed. Release builds carry
/// none of this state.
#[cfg(debug_assertions)]
#[derive(Debug, Default)]
struct ConservationAudit {
    /// Per-principal credit right after the last roll (plan allocation
    /// plus capped carry-over).
    budget: Vec<f64>,
    /// Cost admitted through the gate since the last roll.
    admitted_cost: Vec<f64>,
}

impl<V: CoordinationView> EnforcementCore<V> {
    /// Builds the enforcement state machine for the principals in
    /// `levels`, coordinating through `coordination`.
    pub fn new(levels: &AccessLevels, cfg: SchedulerConfig, mode: QueueMode, coordination: V) -> Self {
        let n = levels.len();
        EnforcementCore {
            scheduler: WindowScheduler::new(levels, cfg),
            mode,
            queues: PrincipalQueues::new(n),
            gate: CreditGate::for_principals(n),
            estimator: RateEstimator::new(n, DEMAND_EWMA_ALPHA),
            arrivals_this_window: vec![0.0; n],
            demand_buf: Vec::with_capacity(n),
            coordination,
            last_plan: Plan::zero(n, n),
            admitted: 0,
            deferred: 0,
            #[cfg(debug_assertions)]
            audit: ConservationAudit {
                budget: vec![0.0; n],
                admitted_cost: vec![0.0; n],
            },
        }
    }

    /// Checks the finished window's conservation invariant and resets the
    /// per-window admitted-cost tally.
    #[cfg(debug_assertions)]
    fn audit_window_end(&mut self) {
        for (i, (&spent, &had)) in
            self.audit.admitted_cost.iter().zip(&self.audit.budget).enumerate()
        {
            debug_assert!(
                spent <= had + 1e-6,
                "conservation violated: principal {i} admitted {spent} cost against a \
                 window budget of {had}"
            );
        }
        for c in &mut self.audit.admitted_cost {
            *c = 0.0;
        }
    }

    /// Snapshots the fresh window's budget (gate credit right after roll).
    #[cfg(debug_assertions)]
    fn audit_window_start(&mut self) {
        for (i, b) in self.audit.budget.iter_mut().enumerate() {
            *b = self.gate.credit(PrincipalId(i));
        }
    }

    /// Number of principals under enforcement.
    pub fn n_principals(&self) -> usize {
        self.arrivals_this_window.len()
    }

    /// The scheduling window length, seconds. Control planes must tick at
    /// exactly this cadence — quotas are scaled to it.
    pub fn window_secs(&self) -> f64 {
        self.scheduler.config().window_secs
    }

    /// The coordination view (e.g. for the simulator to deliver the
    /// aggregated demand).
    pub fn coordination_mut(&mut self) -> &mut V {
        &mut self.coordination
    }

    /// Installs new access levels after a capacity or agreement change
    /// (agreements are interpreted dynamically, §2.2).
    pub fn update_levels(&mut self, levels: &AccessLevels) {
        self.scheduler.update_levels(levels);
    }

    /// `(hits, misses)` of the scheduler's plan cache since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.scheduler.cache_stats()
    }

    /// Plan-cache entries pushed out by the LRU cap since construction.
    pub fn cache_evictions(&self) -> u64 {
        self.scheduler.cache_evictions()
    }

    /// `(solves, pivots)` across the scheduler's LP engines since
    /// construction.
    pub fn lp_stats(&self) -> (u64, u64) {
        self.scheduler.lp_stats()
    }

    /// `(warm_hits, cold_fallbacks)` of the warm-started revised solver:
    /// windows that reused the previous basis vs. windows that restarted
    /// cold or fell back to the dense tableau.
    pub fn warm_stats(&self) -> (u64, u64) {
        let warm = self.scheduler.warm_stats();
        (warm.warm_solves, warm.cold_starts + self.scheduler.dense_fallbacks())
    }

    /// The most recent installed plan (per-window request budgets).
    pub fn last_plan(&self) -> &Plan {
        &self.last_plan
    }

    /// Requests admitted (forwarded) since construction.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests deferred (self-redirected) since construction.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }

    /// A snapshot of every counter the shared observability payload
    /// reports.
    pub fn counters(&self) -> EnforcementCounters {
        let (plan_cache_hits, plan_cache_misses) = self.scheduler.cache_stats();
        let (lp_solves, lp_pivots) = self.scheduler.lp_stats();
        let (lp_warm_hits, lp_cold_fallbacks) = self.warm_stats();
        EnforcementCounters {
            admitted: self.admitted,
            deferred: self.deferred,
            parked: self.queues.total_len() as u64,
            plan_cache_hits,
            plan_cache_misses,
            plan_cache_evictions: self.scheduler.cache_evictions(),
            lp_solves,
            lp_pivots,
            lp_warm_hits,
            lp_cold_fallbacks,
        }
    }

    /// Records an arrival without consulting the gate — for transports
    /// whose requests always park externally (the explicit L7 scheme),
    /// where the per-window drain decides release.
    pub fn note_arrival(&mut self, principal: PrincipalId, cost: f64) {
        self.arrivals_this_window[principal.0] += cost;
    }

    /// Handles an arriving request.
    pub fn on_arrival(&mut self, req: Request) -> ArrivalOutcome {
        self.on_arrival_preferring(req, None)
    }

    /// Handles an arriving request, preferring `preferred` server while it
    /// still has allocation (connection affinity, §4.2).
    pub fn on_arrival_preferring(&mut self, req: Request, preferred: Option<usize>) -> ArrivalOutcome {
        self.arrivals_this_window[req.principal.0] += req.cost;
        match self.mode {
            QueueMode::Explicit => {
                self.queues.push(req);
                ArrivalOutcome::Queued
            }
            QueueMode::CreditRetry { .. } | QueueMode::CreditPark => {
                match self.gate.admit_with_preference(&req, preferred) {
                    Admission::Admit { server } => {
                        self.admitted += 1;
                        #[cfg(debug_assertions)]
                        {
                            self.audit.admitted_cost[req.principal.0] += req.cost;
                        }
                        ArrivalOutcome::Forward { server }
                    }
                    Admission::Defer => match self.mode {
                        QueueMode::CreditRetry { .. } => {
                            self.deferred += 1;
                            ArrivalOutcome::Defer
                        }
                        _ => {
                            self.queues.push(req);
                            ArrivalOutcome::Queued
                        }
                    },
                }
            }
        }
    }

    /// Attempts to admit *parked* work being reinjected: the request was
    /// already counted as an arrival when it first reached the redirector
    /// (and its continued presence is reported via the backlog hint), so
    /// it must not inflate the demand estimate again. Returns the assigned
    /// server on success; a deferral is not counted — the work stays
    /// parked.
    pub fn readmit(&mut self, req: &Request, preferred: Option<usize>) -> Option<usize> {
        match self.gate.admit_with_preference(req, preferred) {
            Admission::Admit { server } => {
                self.admitted += 1;
                #[cfg(debug_assertions)]
                {
                    self.audit.admitted_cost[req.principal.0] += req.cost;
                }
                Some(server)
            }
            Admission::Defer => None,
        }
    }

    /// Rolls the scheduling window at time `now` (see the module docs for
    /// the exact sequence). `backlog` is the externally-parked work per
    /// principal (cost-weighted), added to the published demand; `released`
    /// is cleared and filled with the requests released from the internal
    /// queues, with their target servers.
    pub fn on_window_tick(
        &mut self,
        now: f64,
        backlog: Option<&[f64]>,
        released: &mut Vec<(Request, usize)>,
    ) {
        released.clear();
        // Fold the finished window's arrivals into the estimator.
        self.estimator.observe(&self.arrivals_this_window);
        for a in &mut self.arrivals_this_window {
            *a = 0.0;
        }

        // Local demand for the coming window.
        match self.mode {
            QueueMode::Explicit => self.queues.lengths_into(&mut self.demand_buf),
            QueueMode::CreditRetry { .. } => {
                self.demand_buf.clear();
                self.demand_buf.extend_from_slice(self.estimator.estimates());
            }
            QueueMode::CreditPark => {
                // Parked backlog plus expected fresh arrivals.
                self.queues.lengths_into(&mut self.demand_buf);
                for (d, e) in self.demand_buf.iter_mut().zip(self.estimator.estimates()) {
                    *d += e;
                }
            }
        }
        if let Some(b) = backlog {
            for (d, x) in self.demand_buf.iter_mut().zip(b) {
                *d += x;
            }
        }

        // Read strictly before publishing: the plan uses the freshest
        // *previous* aggregate, never this round's own demand.
        let view = self.coordination.read(now);
        let plan: Plan = self.scheduler.plan_window_shared(view, &self.demand_buf);
        self.coordination.publish(now, &self.demand_buf);

        match self.mode {
            QueueMode::Explicit => {
                let dispatches = self.queues.release(&plan);
                self.admitted += dispatches.len() as u64;
                released.extend(dispatches.into_iter().map(|d| (d.request, d.server)));
            }
            QueueMode::CreditRetry { .. } => {
                #[cfg(debug_assertions)]
                self.audit_window_end();
                self.gate.roll_window(&plan);
                #[cfg(debug_assertions)]
                self.audit_window_start();
            }
            QueueMode::CreditPark => {
                #[cfg(debug_assertions)]
                self.audit_window_end();
                self.gate.roll_window(&plan);
                #[cfg(debug_assertions)]
                self.audit_window_start();
                // Reinject parked requests through the fresh credit, FIFO
                // per principal, stopping at the first the gate defers.
                let gate = &mut self.gate;
                let admitted = &mut self.admitted;
                #[cfg(debug_assertions)]
                let audit_cost = &mut self.audit.admitted_cost;
                reinject_fifo(
                    self.queues.n_principals(),
                    &mut self.queues,
                    |_i, req: &Request| match gate.admit(req) {
                        Admission::Admit { server } => {
                            *admitted += 1;
                            #[cfg(debug_assertions)]
                            {
                                audit_cost[req.principal.0] += req.cost;
                            }
                            Some(server)
                        }
                        Admission::Defer => None,
                    },
                    |req, server| released.push((req, server)),
                );
            }
        }
        self.last_plan = plan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covenant_agreements::AgreementGraph;

    /// Server 100 req/s, A [0.2,1], B [0.8,1] — 10 units per 100 ms window.
    fn levels() -> AccessLevels {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 100.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
        g.access_levels()
    }

    fn core(mode: QueueMode) -> EnforcementCore<DelayedCoordination> {
        EnforcementCore::new(
            &levels(),
            SchedulerConfig::community_default(),
            mode,
            DelayedCoordination::new(0.0),
        )
    }

    const A: PrincipalId = PrincipalId(1);
    const B: PrincipalId = PrincipalId(2);

    fn arrive(c: &mut EnforcementCore<DelayedCoordination>, id: u64, p: PrincipalId) -> ArrivalOutcome {
        c.on_arrival(Request::unit(id, p, 0.0))
    }

    /// Ticks at `now` and delivers the aggregate (single-node loopback),
    /// returning the released requests.
    fn tick(c: &mut EnforcementCore<DelayedCoordination>, now: f64) -> Vec<(Request, usize)> {
        let mut released = Vec::new();
        c.on_window_tick(now, None, &mut released);
        let agg = Rc::new(c.coordination_mut().outbox().to_vec());
        c.coordination_mut().deliver(now, agg);
        released
    }

    #[test]
    fn explicit_mode_queues_then_releases_within_plan() {
        let mut c = core(QueueMode::Explicit);
        for id in 0..20 {
            assert_eq!(arrive(&mut c, id, B), ArrivalOutcome::Queued);
        }
        // First tick plans conservatively (no view yet): half of B's
        // mandatory 8/window = 4 released.
        let first = tick(&mut c, 0.1);
        assert_eq!(first.len(), 4);
        // With the view delivered (20 demand published at the first tick),
        // the informed global plan admits the full capacity 10, scaled to
        // the local queue fraction 16/20 → 8 released.
        let second = tick(&mut c, 0.2);
        assert_eq!(second.len(), 8);
        // FIFO order by request id.
        let ids: Vec<u64> = second.iter().map(|(r, _)| r.id.0).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(c.admitted(), (first.len() + second.len()) as u64);
        assert_eq!(c.counters().parked, 20 - c.admitted());
    }

    #[test]
    fn credit_retry_defers_until_window_rolls() {
        let mut c = core(QueueMode::CreditRetry { retry_delay: 0.05 });
        assert_eq!(arrive(&mut c, 0, A), ArrivalOutcome::Defer);
        assert_eq!(arrive(&mut c, 1, A), ArrivalOutcome::Defer);
        // Conservative window: A's mandatory is 2/window, so half = 1.
        tick(&mut c, 0.1);
        assert_eq!(arrive(&mut c, 2, A), ArrivalOutcome::Forward { server: 0 });
        assert_eq!(arrive(&mut c, 3, A), ArrivalOutcome::Defer);
        // Informed window: demand ~2/window is fully within A's reach.
        tick(&mut c, 0.2);
        assert!(matches!(arrive(&mut c, 4, A), ArrivalOutcome::Forward { .. }));
        assert!(matches!(arrive(&mut c, 5, A), ArrivalOutcome::Forward { .. }));
        let counters = c.counters();
        assert_eq!(counters.admitted, 3);
        assert_eq!(counters.deferred, 3);
        assert_eq!(counters.parked, 0);
    }

    #[test]
    fn credit_park_parks_then_reinjects_fifo() {
        let mut c = core(QueueMode::CreditPark);
        for id in 0..12 {
            let out = arrive(&mut c, id, B);
            assert_eq!(out, ArrivalOutcome::Queued, "request {id}: {out:?}");
        }
        let first = tick(&mut c, 0.1); // conservative: half of B's 8
        assert_eq!(first.len(), 4);
        let second = tick(&mut c, 0.2);
        // FIFO across the whole parked backlog.
        let ids: Vec<u64> = first.iter().chain(&second).map(|(r, _)| r.id.0).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids {ids:?}");
        assert_eq!(c.admitted() as usize, first.len() + second.len());
        // Fresh in-quota arrivals now forward immediately.
        tick(&mut c, 0.3);
        assert!(matches!(arrive(&mut c, 100, B), ArrivalOutcome::Forward { .. }));
    }

    #[test]
    fn backlog_hint_raises_published_demand() {
        let mut c = core(QueueMode::CreditRetry { retry_delay: 0.05 });
        let mut released = Vec::new();
        // No arrivals, but an externally-parked backlog of 5 for B.
        c.on_window_tick(0.1, Some(&[0.0, 0.0, 5.0]), &mut released);
        assert_eq!(c.coordination_mut().outbox(), &[0.0, 0.0, 5.0]);
        // Conservative window still caps at half of B's mandatory 8 = 4.
        let quota = c.last_plan().admitted(B);
        assert!((quota - 4.0).abs() < 1e-6, "quota {quota}");
    }

    #[test]
    fn affinity_preference_honored_while_allocated() {
        let mut g = AgreementGraph::new();
        let s1 = g.add_principal("S1", 100.0);
        let s2 = g.add_principal("S2", 100.0);
        let a = g.add_principal("A", 0.0);
        g.add_agreement(s1, a, 0.5, 1.0).unwrap();
        g.add_agreement(s2, a, 0.5, 1.0).unwrap();
        let mut c = EnforcementCore::new(
            &g.access_levels(),
            SchedulerConfig::community_default(),
            QueueMode::CreditRetry { retry_delay: 0.05 },
            DelayedCoordination::new(0.0),
        );
        let p = PrincipalId(2);
        for id in 0..40 {
            c.on_arrival(Request::unit(id, p, 0.0));
        }
        tick(&mut c, 0.1);
        tick(&mut c, 0.2);
        let out = c.on_arrival_preferring(Request::unit(99, p, 0.2), Some(1));
        assert_eq!(out, ArrivalOutcome::Forward { server: 1 });
    }

    #[test]
    fn readmit_counts_admissions_but_not_arrivals() {
        let mut c = core(QueueMode::CreditRetry { retry_delay: 0.05 });
        for id in 0..4 {
            arrive(&mut c, id, B);
        }
        tick(&mut c, 0.1);
        let before = c.admitted();
        let req = Request::unit(50, B, 0.15);
        assert!(c.readmit(&req, None).is_some());
        assert_eq!(c.admitted(), before + 1);
        // The readmission did not count as demand: the next window's
        // estimate only reflects genuine arrivals (4, then 0 → EWMA 2… but
        // readmit added nothing on top).
        tick(&mut c, 0.2);
        assert!((c.coordination_mut().outbox()[B.0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn conservation_audit_holds_under_saturation() {
        // Saturating both principals for many windows drives the
        // debug-build conservation audit (per-window admits ≤ installed
        // budget; credits never negative) across fresh arrivals,
        // readmissions, and park reinjection. Any overdraw panics here.
        for mode in [QueueMode::CreditRetry { retry_delay: 0.05 }, QueueMode::CreditPark] {
            let mut c = core(mode);
            let mut id = 0;
            for w in 1..=20u32 {
                for _ in 0..25 {
                    let _ = arrive(&mut c, id, A);
                    let _ = arrive(&mut c, id + 1, B);
                    id += 2;
                }
                let _ = c.readmit(&Request::unit(1_000_000 + u64::from(w), B, 0.0), None);
                tick(&mut c, f64::from(w) * 0.1);
            }
            assert!(c.admitted() > 0);
        }
    }

    #[test]
    fn window_secs_comes_from_scheduler_config() {
        let c = core(QueueMode::CreditPark);
        assert!((c.window_secs() - 0.1).abs() < 1e-12);
    }
}
