//! One counters schema for every stack.
//!
//! The simulator, the legacy single-core live redirectors, and the sharded
//! reactor planes each accumulate overlapping-but-different counter sets.
//! [`CountersReport`] is the union, organized into sections: a solver
//! profile every stack has, plus optional admission, event-engine,
//! network-link, and sharding sections that only some stacks populate.
//! `covenant_core::report` owns the single JSON encoder; the per-stack
//! emitters there are thin wrappers that build one of these and encode it,
//! so the schemas can never drift apart.

use crate::enforcement::EnforcementCounters;
use crate::shard::ShardSnapshot;

/// LP / plan-cache work profile. Every stack runs the same windowed
/// solver, so this section is always present.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverTotals {
    /// Windows that replayed a memoized plan instead of running the LP.
    pub plan_cache_hits: u64,
    /// Windows that ran the LP.
    pub plan_cache_misses: u64,
    /// Plan-cache entries pushed out by the LRU cap.
    pub plan_cache_evictions: u64,
    /// Simplex solves performed.
    pub lp_solves: u64,
    /// Simplex pivots performed.
    pub lp_pivots: u64,
    /// Windows solved by reusing the previous window's optimal basis.
    pub lp_warm_hits: u64,
    /// Windows the warm solver restarted cold or handed to the dense
    /// tableau.
    pub lp_cold_fallbacks: u64,
}

impl SolverTotals {
    /// The solver slice of one enforcement core's counters.
    pub fn from_counters(c: &EnforcementCounters) -> Self {
        Self {
            plan_cache_hits: c.plan_cache_hits,
            plan_cache_misses: c.plan_cache_misses,
            plan_cache_evictions: c.plan_cache_evictions,
            lp_solves: c.lp_solves,
            lp_pivots: c.lp_pivots,
            lp_warm_hits: c.lp_warm_hits,
            lp_cold_fallbacks: c.lp_cold_fallbacks,
        }
    }
}

/// Per-request admission outcomes (live stacks; the simulator reports
/// admission through its rate series instead).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdmissionTotals {
    /// Requests admitted (forwarded to a server).
    pub admitted: u64,
    /// Requests deferred (self-redirected / refused this window).
    pub deferred: u64,
    /// Work currently parked awaiting credit.
    pub parked: u64,
    /// Connections refused with RST at a hard cap before they ever
    /// reached admission.
    pub shed: u64,
}

/// Discrete-event-engine performance profile (simulator only).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineTotals {
    /// Events popped over the run.
    pub events_processed: u64,
    /// Largest number of events ever pending at once.
    pub peak_event_queue: usize,
    /// Wall-clock event throughput.
    pub events_per_sec: f64,
    /// Combining-tree messages exchanged.
    pub tree_messages: u64,
    /// What all-pairs exchange would have cost instead.
    pub pairwise_messages_equivalent: u64,
    /// Requests dropped at a full server backlog.
    pub dropped_server: u64,
}

/// Shared-link transfer profile (simulator runs with a network model).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetTotals {
    /// Reply transfers carried across all links.
    pub transfers: u64,
    /// Reply bytes carried across all links.
    pub bytes: f64,
    /// Largest number of transfers in flight on any one link.
    pub peak_concurrent: usize,
    /// Mean reply transfer time, seconds.
    pub mean_transfer_secs: f64,
}

/// Sharded-reactor profile: aggregate batching counters plus each shard's
/// individual snapshot (the load-balance view the sums hide).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardingTotals {
    /// Readiness wakes processed, all shards.
    pub reactor_wakes: u64,
    /// Verdicts issued across all wakes, all shards.
    pub batched_verdicts: u64,
    /// Each shard's snapshot, in shard order.
    pub per_shard: Vec<ShardSnapshot>,
}

/// The unified counters payload: a solver section every stack fills in,
/// plus the sections this particular stack has.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CountersReport {
    /// LP / plan-cache work (always present).
    pub solver: SolverTotals,
    /// Admission outcomes (live stacks).
    pub admission: Option<AdmissionTotals>,
    /// Event-engine profile (simulator).
    pub engine: Option<EngineTotals>,
    /// Shared-link transfer profile (simulator with a network model).
    pub net: Option<NetTotals>,
    /// Per-shard breakdown (sharded reactor planes).
    pub sharding: Option<ShardingTotals>,
}

impl CountersReport {
    /// Report for one single-core live enforcement core plus the
    /// transport's shed count.
    pub fn live(counters: &EnforcementCounters, shed: u64) -> Self {
        Self {
            solver: SolverTotals::from_counters(counters),
            admission: Some(AdmissionTotals {
                admitted: counters.admitted,
                deferred: counters.deferred,
                parked: counters.parked,
                shed,
            }),
            engine: None,
            net: None,
            sharding: None,
        }
    }

    /// Report for a sharded reactor deployment: per-shard snapshots are
    /// summed into the admission and solver sections and retained verbatim
    /// in the sharding section.
    pub fn sharded(shards: &[ShardSnapshot]) -> Self {
        let mut solver = SolverTotals::default();
        let mut adm = AdmissionTotals::default();
        let mut sharding = ShardingTotals::default();
        for s in shards {
            let c = &s.counters;
            adm.admitted += c.admitted;
            adm.deferred += c.deferred;
            adm.parked += c.parked;
            adm.shed += s.shed;
            solver.plan_cache_hits += c.plan_cache_hits;
            solver.plan_cache_misses += c.plan_cache_misses;
            solver.plan_cache_evictions += c.plan_cache_evictions;
            solver.lp_solves += c.lp_solves;
            solver.lp_pivots += c.lp_pivots;
            solver.lp_warm_hits += c.lp_warm_hits;
            solver.lp_cold_fallbacks += c.lp_cold_fallbacks;
            sharding.reactor_wakes += s.reactor_wakes;
            sharding.batched_verdicts += s.batched_verdicts;
        }
        sharding.per_shard = shards.to_vec();
        Self {
            solver,
            admission: Some(adm),
            engine: None,
            net: None,
            sharding: Some(sharding),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_report_splits_admission_from_solver() {
        let c = EnforcementCounters {
            admitted: 10,
            deferred: 2,
            parked: 1,
            lp_solves: 5,
            lp_warm_hits: 4,
            ..Default::default()
        };
        let r = CountersReport::live(&c, 3);
        let adm = r.admission.unwrap();
        assert_eq!(adm.admitted, 10);
        assert_eq!(adm.shed, 3);
        assert_eq!(r.solver.lp_solves, 5);
        assert!(r.engine.is_none() && r.net.is_none() && r.sharding.is_none());
    }

    #[test]
    fn sharded_report_sums_and_retains_shards() {
        let shards = [
            ShardSnapshot {
                counters: EnforcementCounters { admitted: 7, lp_pivots: 3, ..Default::default() },
                reactor_wakes: 4,
                batched_verdicts: 9,
                shed: 1,
            },
            ShardSnapshot {
                counters: EnforcementCounters { admitted: 5, lp_pivots: 2, ..Default::default() },
                reactor_wakes: 6,
                batched_verdicts: 11,
                shed: 0,
            },
        ];
        let r = CountersReport::sharded(&shards);
        assert_eq!(r.admission.unwrap().admitted, 12);
        assert_eq!(r.solver.lp_pivots, 5);
        let sh = r.sharding.unwrap();
        assert_eq!(sh.reactor_wakes, 10);
        assert_eq!(sh.batched_verdicts, 20);
        assert_eq!(sh.per_shard.len(), 2);
        assert_eq!(sh.per_shard[1].counters.admitted, 5);
    }
}
