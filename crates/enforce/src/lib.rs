//! One enforcement core for every transport.
//!
//! The paper runs the same windowed admission algorithm behind three very
//! different front doors — a simulator, an L7 HTTP redirector, and an L4
//! TCP proxy. This crate is that algorithm, extracted once:
//!
//! * [`EnforcementCore`] — the full per-redirector state machine
//!   (scheduler + credits + queues + estimation + counters), with
//!   [`EnforcementCore::on_arrival`] and
//!   [`EnforcementCore::on_window_tick`] as the only entry points and a
//!   [`CoordinationView`] trait abstracting the demand-aggregation
//!   substrate.
//! * [`CreditGate`] — implicit queuing via per-window admission credits
//!   with fractional carry-over (§4.1, the paper's final design).
//! * [`PrincipalQueues`] — explicit per-principal FIFO queues (the first
//!   L7 implementation, kept for the bunching comparison).
//! * [`RateEstimator`] — EWMA arrival-rate estimation feeding the LP in
//!   implicit mode.
//! * [`reinject_fifo`] — the shared FIFO drain that reinjects parked work
//!   (simulator park queues, L7 waiting handlers, L4 parked connections)
//!   through fresh credit at each window boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boundary;
mod counters;
mod credit;
mod enforcement;
mod estimator;
mod queue;
mod reinject;
mod shard;

pub use boundary::next_aligned_boundary;
pub use counters::{
    AdmissionTotals, CountersReport, EngineTotals, NetTotals, ShardingTotals, SolverTotals,
};
pub use credit::{Admission, CreditGate};
pub use enforcement::{
    ArrivalOutcome, CoordinationView, DelayedCoordination, EnforcementCore, EnforcementCounters,
    QueueMode,
};
pub use estimator::RateEstimator;
pub use queue::{Dispatch, PrincipalQueues};
pub use reinject::{reinject_fifo, ParkedQueue};
pub use shard::{ShardSnapshot, ShardStats};
