//! Property tests for the queuing structures behind the enforcement core.

use covenant_agreements::PrincipalId;
use covenant_enforce::{Admission, CreditGate, PrincipalQueues};
use covenant_sched::{Plan, Request};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The credit gate never admits more than quota + burst headroom, for
    /// any admission pattern.
    #[test]
    fn credit_gate_conservation(
        quotas in proptest::collection::vec(0.0..20.0f64, 1..5),
        pattern in proptest::collection::vec(0usize..5, 0..200),
    ) {
        let windows = 8usize;
        let n = quotas.len();
        let mut gate = CreditGate::for_principals(n);
        let plan = Plan {
            assignments: quotas.iter().map(|&q| {
                let mut row = vec![0.0; n];
                row[0] = q;
                row
            }).collect(),
            theta: None,
            income: None,
        };
        let mut admitted = vec![0u64; n];
        let mut id = 0;
        for _ in 0..windows {
            gate.roll_window(&plan);
            for &p in &pattern {
                if p < n {
                    if matches!(gate.admit(&Request::unit(id, PrincipalId(p), 0.0)), Admission::Admit { .. }) {
                        admitted[p] += 1;
                    }
                    id += 1;
                }
            }
        }
        for i in 0..n {
            // Total admitted ≤ windows × quota + burst headroom (2 windows).
            let cap = (windows as f64 + 2.0) * quotas[i];
            prop_assert!(admitted[i] as f64 <= cap + 1e-6,
                "principal {i}: {} > {}", admitted[i], cap);
        }
    }

    /// Explicit queues release in FIFO order, never exceed the budget, and
    /// never lose requests.
    #[test]
    fn explicit_queue_conservation(
        pushes in proptest::collection::vec(0usize..3, 0..120),
        budget in 0.0..30.0f64,
    ) {
        let n = 3;
        let mut q = PrincipalQueues::new(n);
        for (id, &p) in pushes.iter().enumerate() {
            q.push(Request::unit(id as u64, PrincipalId(p), 0.0));
        }
        let before = q.total_len();
        let plan = Plan {
            assignments: (0..n).map(|_| vec![budget / n as f64; n]).collect(),
            theta: None,
            income: None,
        };
        let released = q.release(&plan);
        prop_assert_eq!(released.len() + q.total_len(), before);
        // Per principal: released ≤ budget (unit costs).
        for i in 0..n {
            let cnt = released.iter().filter(|d| d.request.principal.0 == i).count();
            prop_assert!(cnt as f64 <= budget + 1e-9);
            // FIFO within principal: ids increasing.
            let ids: Vec<u64> = released
                .iter()
                .filter(|d| d.request.principal.0 == i)
                .map(|d| d.request.id.0)
                .collect();
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
