//! Figure 9 — L4 redirector, community context.
//!
//! A and B each own a 320 req/s server; B shares [0.5, 0.5] with A. A runs
//! 2/0/1/0 clients (400 req/s each) across four phases, B always one.
//! Expected levels: (480,160) → (0,320) → (400,240) → (0,320).

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let outcome = covenant_core::scenarios::fig9(50.0).run();
    if csv {
        print!("{}", outcome.to_csv());
        return;
    }
    println!("Figure 9: L4 community context (A owns 320, B owns 320, B->A [0.5,0.5])\n");
    println!("{}", outcome.phase_table());
    println!("paper levels: (A 480, B 160) / (0, 320) / (400, 240) / (0, 320)");
}
