//! Ablation — why an LP and not plain proportional share? (paper §6)
//!
//! The paper builds on the virtual-time notion behind Fair Queuing /
//! VirtualClock but replaces explicit queues with a credit scheme driven
//! by an LP, because `[lb, ub]` agreements carry semantics weights cannot
//! express. This bin runs both schedulers on the same window of demand and
//! reports where weighted fair queuing violates the agreements.

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_sched::{CommunityScheduler, Request, VirtualClock};

/// One window of the comparison: returns (lp_a, lp_b, wfq_a, wfq_b).
fn compare(lb_a: f64, ub_a: f64, lb_b: f64, ub_b: f64, demand_a: f64, demand_b: f64) -> [f64; 4] {
    let v = 320.0;
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", v);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, lb_a, ub_a).unwrap();
    g.add_agreement(s, b, lb_b, ub_b).unwrap();
    let lv = g.access_levels();
    let plan = CommunityScheduler::new().plan(&lv, &[0.0, demand_a, demand_b]);

    // WFQ: weights = the lower bounds (the only knob it has).
    let mut vc = VirtualClock::new(vec![0.0, lb_a.max(0.01), lb_b.max(0.01)]);
    let mut id = 0;
    for _ in 0..demand_a as usize {
        vc.enqueue(Request::unit(id, PrincipalId(1), 0.0));
        id += 1;
    }
    for _ in 0..demand_b as usize {
        vc.enqueue(Request::unit(id, PrincipalId(2), 0.0));
        id += 1;
    }
    let served = vc.dispatch_window(v);
    let wfq_a = served.iter().filter(|r| r.principal.0 == 1).count() as f64;
    let wfq_b = served.iter().filter(|r| r.principal.0 == 2).count() as f64;
    [plan.admitted(a), plan.admitted(b), wfq_a, wfq_b]
}

fn violation(ok: bool) -> &'static str {
    if ok {
        "   "
    } else {
        " <- violates agreement"
    }
}

fn main() {
    println!("V = 320 req/s. LP = the paper's window scheduler; WFQ = VirtualClock with lb weights.\n");
    let cases: [(&str, f64, f64, f64, f64, f64, f64); 4] = [
        ("both flooding, [0.2,1]/[0.8,1]", 0.2, 1.0, 0.8, 1.0, 400.0, 400.0),
        ("B idle, A capped [0.2,0.4]", 0.2, 0.4, 0.6, 1.0, 400.0, 0.0),
        ("B floods past its ub [0.5,0.5]", 0.5, 0.5, 0.5, 0.5, 10.0, 1000.0),
        ("B under mandatory, [0.2,1]/[0.8,1]", 0.2, 1.0, 0.8, 1.0, 400.0, 135.0),
    ];
    println!(
        "{:<36} {:>8} {:>8} {:>8} {:>8}",
        "scenario", "LP A", "LP B", "WFQ A", "WFQ B"
    );
    for (name, lba, uba, lbb, ubb, da, db) in cases {
        let [lp_a, lp_b, wfq_a, wfq_b] = compare(lba, uba, lbb, ubb, da, db);
        // Agreement-compliance checks for the WFQ allocation.
        let ub_cap_a = uba * 320.0;
        let ub_cap_b = ubb * 320.0;
        let floor_a = (lba * 320.0).min(da);
        let floor_b = (lbb * 320.0).min(db);
        let ok = wfq_a <= ub_cap_a + 1.0
            && wfq_b <= ub_cap_b + 1.0
            && wfq_a + 1.0 >= floor_a
            && wfq_b + 1.0 >= floor_b;
        println!(
            "{:<36} {:>8.0} {:>8.0} {:>8.0} {:>8.0}{}",
            name, lp_a, lp_b, wfq_a, wfq_b, violation(ok)
        );
    }
    println!("\nWFQ honours *ratios* among backlogged flows but has no upper bounds and no");
    println!("demand-decoupled floors — the [lb,ub] semantics that require the LP.");
}
