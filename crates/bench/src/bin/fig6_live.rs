//! Figure 6 over real sockets: the sharded L7 prototype on loopback.
//!
//! The simulator version (`fig6_l7_agreements`) reproduces the exact rate
//! levels; this binary runs the same experiment through the actual HTTP
//! redirector stack — origin server, two coordinated *sharded* L7
//! redirectors (each a thread-per-core epoll data plane; shard *i* of
//! redirector *k* publishes as tree leaf `k·shards + i`), and rate-capped
//! client threads — to show the prototype enforcing the same shares on a
//! real network path.
//!
//! Default phases are 8 s (pass a phase length in seconds to change).

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_coord::Coordinator;
use covenant_http::{HttpClient, OriginServer, StatusCode};
use covenant_l7::{L7Config, ShardedL7};
use covenant_sched::SchedulerConfig;
use covenant_tree::Topology;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A paced client thread: sends up to `rate` requests/second for `active`
/// (start offset, duration), counting completions into `done`.
#[allow(clippy::too_many_arguments)]
fn client_thread(
    url: String,
    rate: f64,
    start_at: f64,
    active_secs: f64,
    epoch: Instant,
    done: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let client = HttpClient {
            max_redirects: 64,
            self_redirect_pause: Duration::from_millis(5),
            timeout: Duration::from_millis(800),
        };
        let interval = Duration::from_secs_f64(1.0 / rate);
        // Wait for the phase start.
        while epoch.elapsed().as_secs_f64() < start_at {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let phase_end = start_at + active_secs;
        let mut next = Instant::now();
        while epoch.elapsed().as_secs_f64() < phase_end && !stop.load(Ordering::Relaxed) {
            if let Ok(r) = client.get(&url) {
                if r.response.status == StatusCode::OK {
                    done.fetch_add(1, Ordering::Relaxed);
                }
            }
            next += interval;
            let now = Instant::now();
            if next > now {
                std::thread::sleep(next - now);
            } else {
                next = now;
            }
        }
    })
}

fn main() {
    let phase: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8.0);
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 320.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.2, 1.0).unwrap();
    g.add_agreement(s, b, 0.8, 1.0).unwrap();
    let levels = g.access_levels();

    let origin =
        OriginServer::bind("127.0.0.1:0", 2000.0, 64, Duration::from_secs(2)).expect("origin");
    // Two sharded redirectors on one coordination tree: redirector k's
    // shard i publishes as leaf k·SHARDS + i, so the tree spans every
    // reactor thread in the deployment.
    const SHARDS: usize = 2;
    let coordinator = Coordinator::new(Topology::star(2 * SHARDS, 0.0), 0.0);
    let mk = |redirector: usize| {
        ShardedL7::start_at(
            "127.0.0.1:0",
            L7Config {
                principal_names: vec!["S".into(), "A".into(), "B".into()],
                backends: [(0, origin.addr())].into(),
            },
            SHARDS,
            &levels,
            SchedulerConfig::community_default(),
            coordinator.clone(),
            redirector * SHARDS,
        )
        .expect("redirector")
    };
    let r1 = mk(0);
    let r2 = mk(1);

    let epoch = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let a_done = Arc::new(AtomicU64::new(0));
    let b_done = Arc::new(AtomicU64::new(0));

    // A: two 135 req/s clients via R1, active all three phases.
    // B: one 135 req/s client via R2, active phases 1 and 3 only.
    let mut handles = Vec::new();
    for _ in 0..2 {
        handles.push(client_thread(
            format!("http://{}/org/A/page", r1.addr()),
            135.0,
            0.0,
            3.0 * phase,
            epoch,
            Arc::clone(&a_done),
            Arc::clone(&stop),
        ));
    }
    for (start, dur) in [(0.0, phase), (2.0 * phase, phase)] {
        handles.push(client_thread(
            format!("http://{}/org/B/page", r2.addr()),
            135.0,
            start,
            dur,
            epoch,
            Arc::clone(&b_done),
            Arc::clone(&stop),
        ));
    }

    // Sample per-phase completions.
    println!("Figure 6 live (phases of {phase:.0} s):");
    println!("{:<10}{:>10}{:>10}", "phase", "A req/s", "B req/s");
    let mut last_a = 0;
    let mut last_b = 0;
    for p in 1..=3 {
        while epoch.elapsed().as_secs_f64() < p as f64 * phase {
            std::thread::sleep(Duration::from_millis(20));
        }
        let ca = a_done.load(Ordering::Relaxed);
        let cb = b_done.load(Ordering::Relaxed);
        // Trim the first quarter of the phase as settling time is folded
        // in; report raw phase means for simplicity.
        println!(
            "{:<10}{:>10.1}{:>10.1}",
            format!("phase {p}"),
            (ca - last_a) as f64 / phase,
            (cb - last_b) as f64 / phase
        );
        last_a = ca;
        last_b = cb;
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    println!("\nsimulator / paper levels: phase 1 (A 185, B 135); phase 2 (A 270); phase 3 = 1");
    let _ = (PrincipalId(1), PrincipalId(2));
}
