//! Combining-tree wire bench: measures what the simulator only models.
//!
//! Spawns balanced binary trees of n ∈ {3, 7, 15} wire runtimes on
//! loopback (`spawn_local`, virtual-time stamping so every round closes
//! deterministically), drives a few hundred aggregation rounds, and
//! records to `BENCH_tree.json`:
//!
//! - data frames per round, asserted equal to the paper's `2(n−1)`
//!   (one Up and one Down per tree edge — Hello frames excluded);
//! - round-close latency: publish-everywhere to total-delivered-everywhere
//!   wall time through the full tree depth, mean / p50 / p99;
//! - a leaf's measured Up→Down RTT from the runtime's own stats.
//!
//! Pass `--quick` to run 50 rounds per tree instead of 300.

use covenant_core::json::Value;
use covenant_tree::CoordTransport;
use covenant_wire::{spawn_local, StampMode};
use std::time::{Duration, Instant};

/// Balanced binary heap-order tree: node 0 root, parent of i is (i−1)/2.
fn balanced_parents(n: usize) -> Vec<Option<usize>> {
    (0..n).map(|i| if i == 0 { None } else { Some((i - 1) / 2) }).collect()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds: u64 = if quick { 50 } else { 300 };
    let window = Duration::from_millis(10);
    let window_secs = window.as_secs_f64();

    let mut trees = Vec::new();
    let mut failed = false;
    for n in [3usize, 7, 15] {
        let parents = balanced_parents(n);
        let nodes = spawn_local(&parents, 1, StampMode::Virtual, window).expect("spawn tree");
        let transports: Vec<_> = nodes.iter().map(|h| h.transport()).collect();

        // Settle connections: run one throwaway round so Hello exchange
        // and socket setup stay out of the measured latencies.
        for (i, tp) in transports.iter().enumerate() {
            tp.publish_at(i, vec![1.0], window_secs);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while transports.iter().any(|tp| tp.completed_rounds() < 1) {
            assert!(Instant::now() < deadline, "warmup round never closed (n={n})");
            std::thread::yield_now();
        }
        let frames_base: u64 = nodes.iter().map(|h| h.stats().frames_sent()).sum();

        let mut latencies_us: Vec<f64> = Vec::with_capacity(rounds as usize);
        for r in 0..rounds {
            let t = (r + 2) as f64 * window_secs;
            let start = Instant::now();
            for (i, tp) in transports.iter().enumerate() {
                tp.publish_at(i, vec![1.0, (i % 4) as f64], t);
            }
            let deadline = Instant::now() + Duration::from_secs(10);
            while transports.iter().any(|tp| tp.completed_rounds() < r + 2) {
                assert!(Instant::now() < deadline, "round {r} never closed (n={n})");
                std::thread::yield_now();
            }
            latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
        }

        // Frame economy: exactly one Up and one Down per edge per round.
        let frames_total: u64 =
            nodes.iter().map(|h| h.stats().frames_sent()).sum::<u64>() - frames_base;
        let frames_per_round = frames_total as f64 / rounds as f64;
        let expected = (2 * (n - 1)) as u64;
        if frames_total != rounds * expected {
            eprintln!(
                "FAIL: n={n}: {frames_total} data frames over {rounds} rounds, expected {}",
                rounds * expected
            );
            failed = true;
        }
        let forced: u64 = nodes.iter().map(|h| h.stats().rounds_forced()).sum();
        if forced != 0 {
            eprintln!("FAIL: n={n}: {forced} forced rounds in a virtual-time run");
            failed = true;
        }

        latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
        let p50 = percentile(&latencies_us, 0.50);
        let p99 = percentile(&latencies_us, 0.99);
        // Deepest leaf: last node in heap order.
        let leaf_rtt_us = nodes[n - 1].stats().last_rtt_us();
        println!(
            "n={n:<3} frames/round {frames_per_round:>5.1} (expect {expected:>2})  \
             round-close µs mean {mean:>7.1}  p50 {p50:>7.1}  p99 {p99:>7.1}  \
             leaf rtt µs {leaf_rtt_us}"
        );

        trees.push(Value::Obj(vec![
            ("nodes".into(), (n as f64).into()),
            ("depth".into(), ((n + 1).ilog2() as f64).into()),
            ("rounds".into(), (rounds as f64).into()),
            ("frames_per_round".into(), frames_per_round.into()),
            ("expected_frames_per_round".into(), (expected as f64).into()),
            ("round_close_us_mean".into(), mean.into()),
            ("round_close_us_p50".into(), p50.into()),
            ("round_close_us_p99".into(), p99.into()),
            ("leaf_rtt_us".into(), (leaf_rtt_us as f64).into()),
        ]));

        for mut node in nodes {
            node.shutdown();
        }
    }

    let doc = Value::Obj(vec![
        ("bench".into(), "wire_combining_tree".into()),
        ("transport".into(), "length-prefixed frames over loopback TCP (epoll)".into()),
        ("stamp_mode".into(), "virtual".into()),
        ("window_ms".into(), (window.as_millis() as f64).into()),
        ("trees".into(), Value::Arr(trees)),
    ]);
    if !quick {
        std::fs::write("BENCH_tree.json", doc.to_pretty()).expect("write BENCH_tree.json");
        println!("wrote BENCH_tree.json");
    }
    if failed {
        std::process::exit(1);
    }
    println!("tree bench: OK");
}
