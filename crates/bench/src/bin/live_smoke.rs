//! Loopback smoke test for the live prototypes: the sharded L7 redirector
//! and sharded L4 proxy (the thread-per-core epoll data planes), plus the
//! legacy thread-per-connection L4 proxy for schema parity, must forward
//! real requests end-to-end within a couple of seconds.
//!
//! Run by `scripts/tier1.sh`: exits non-zero if any transport fails to
//! complete a request, and prints each data plane's counter snapshot as
//! JSON (`live_counters_sharded_json` for the sharded planes,
//! `live_counters_json` for the legacy proxy — the same keys either way,
//! including `shed`) so CI logs show admission, plan-cache, LP, and
//! shedding activity at a glance.

use covenant_agreements::AgreementGraph;
use covenant_coord::{AdmissionControl, Coordinator};
use covenant_core::{live_counters_json, live_counters_sharded_json};
use covenant_http::{HttpClient, OriginServer, StatusCode};
use covenant_l4::{L4Config, L4Redirector, L4Service, ShardedL4};
use covenant_l7::{L7Config, ShardedL7};
use covenant_sched::SchedulerConfig;
use covenant_tree::Topology;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Server 200 req/s; A entitled to [0.5, 1].
fn system() -> AgreementGraph {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 200.0);
    let a = g.add_principal("A", 0.0);
    g.add_agreement(s, a, 0.5, 1.0).unwrap();
    g
}

/// Issues requests against `url` until the deadline passes; returns
/// completions (HTTP 200).
fn drive(url: &str, deadline: Instant) -> u64 {
    let client = HttpClient {
        max_redirects: 64,
        self_redirect_pause: Duration::from_millis(5),
        timeout: Duration::from_millis(500),
    };
    let mut done = 0;
    while Instant::now() < deadline {
        if let Ok(r) = client.get(url) {
            if r.response.status == StatusCode::OK {
                done += 1;
            }
        }
    }
    done
}

fn main() {
    const SHARDS: usize = 2;
    let g = system();
    let levels = g.access_levels();
    let a = covenant_agreements::PrincipalId(1);
    let mut failed = false;

    let origin =
        OriginServer::bind("127.0.0.1:0", 2000.0, 64, Duration::from_secs(2)).expect("origin");

    // --- Sharded L7: reuseport reactor shards + credit gate + self-redirect. ---
    let l7 = ShardedL7::start(
        "127.0.0.1:0",
        L7Config {
            principal_names: vec!["S".into(), "A".into()],
            backends: [(0, origin.addr())].into(),
        },
        SHARDS,
        &levels,
        SchedulerConfig::community_default(),
        Coordinator::new(Topology::star(SHARDS, 0.0), 0.0),
    )
    .expect("sharded l7 redirector");
    let l7_done = drive(
        &format!("http://{}/org/A/page", l7.addr()),
        Instant::now() + Duration::from_millis(900),
    );
    println!("l7_completed: {l7_done}");
    println!("l7_counters: {}", live_counters_sharded_json(&l7.shard_snapshots()).to_pretty());
    if l7_done == 0 {
        eprintln!("FAIL: no request completed through the sharded L7 redirector");
        failed = true;
    }

    // --- Sharded L4: accept-time admission + parking on reactor shards. ---
    let l4 = ShardedL4::start(
        L4Config {
            services: vec![L4Service { principal: a, bind: "127.0.0.1:0".into() }],
            backends: HashMap::from([(0, origin.addr())]),
            park_limit: 256,
            live_limit: 1024,
        },
        SHARDS,
        &levels,
        SchedulerConfig::community_default(),
        Coordinator::new(Topology::star(SHARDS, 0.0), 0.0),
    )
    .expect("sharded l4 redirector");
    let l4_done = drive(
        &format!("http://{}/page", l4.service_addr(a).expect("service addr")),
        Instant::now() + Duration::from_millis(900),
    );
    println!("l4_completed: {l4_done}");
    println!("l4_counters: {}", live_counters_sharded_json(&l4.shard_snapshots()).to_pretty());
    if l4_done == 0 {
        eprintln!("FAIL: no request completed through the sharded L4 proxy");
        failed = true;
    }

    // --- Legacy L4 (thread-per-connection): same JSON schema, `shed`
    // carrying the live-thread-limit RST counter. ---
    let legacy_ctrl = AdmissionControl::new(
        0,
        &levels,
        SchedulerConfig::community_default(),
        Coordinator::new(Topology::star(1, 0.0), 0.0),
    );
    let legacy = L4Redirector::start(
        L4Config {
            services: vec![L4Service { principal: a, bind: "127.0.0.1:0".into() }],
            backends: HashMap::from([(0, origin.addr())]),
            park_limit: 256,
            live_limit: 1024,
        },
        std::sync::Arc::clone(&legacy_ctrl),
    )
    .expect("legacy l4 redirector");
    let legacy_done = drive(
        &format!("http://{}/page", legacy.service_addr(a).expect("service addr")),
        Instant::now() + Duration::from_millis(600),
    );
    println!("l4_legacy_completed: {legacy_done}");
    println!(
        "l4_legacy_counters: {}",
        live_counters_json(&legacy_ctrl.counters_snapshot(), legacy.refused()).to_pretty()
    );
    if legacy_done == 0 {
        eprintln!("FAIL: no request completed through the legacy L4 proxy");
        failed = true;
    }

    // The sharded planes must have actually rolled windows and admitted.
    for (name, snaps) in [("l7", l7.shard_snapshots()), ("l4", l4.shard_snapshots())] {
        let admitted: u64 = snaps.iter().map(|s| s.counters.admitted).sum();
        if admitted == 0 {
            eprintln!("FAIL: sharded {name} control plane admitted nothing");
            failed = true;
        }
    }
    if legacy_ctrl.counters_snapshot().admitted == 0 {
        eprintln!("FAIL: legacy l4 control plane admitted nothing");
        failed = true;
    }

    drop(l7);
    drop(l4);
    drop(legacy);
    if failed {
        std::process::exit(1);
    }
    println!("live smoke: OK");
}
