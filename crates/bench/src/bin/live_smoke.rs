//! Loopback smoke test for the live prototypes: one L7 redirector and one
//! L4 proxy, both driven by the shared enforcement core, must forward real
//! requests end-to-end within a couple of seconds.
//!
//! Run by `scripts/tier1.sh`: exits non-zero if either transport fails to
//! complete a request, and prints each control plane's counter snapshot as
//! JSON (`covenant_core::live_counters_json`) so CI logs show admission,
//! plan-cache, and LP activity at a glance.

use covenant_agreements::AgreementGraph;
use covenant_coord::{AdmissionControl, Coordinator};
use covenant_core::live_counters_json;
use covenant_http::{HttpClient, OriginServer, StatusCode};
use covenant_l4::{L4Config, L4Redirector, L4Service};
use covenant_l7::{L7Config, L7Redirector};
use covenant_sched::SchedulerConfig;
use covenant_tree::Topology;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server 200 req/s; A entitled to [0.5, 1].
fn system() -> AgreementGraph {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 200.0);
    let a = g.add_principal("A", 0.0);
    g.add_agreement(s, a, 0.5, 1.0).unwrap();
    g
}

/// Issues requests against `url` until one completes (HTTP 200) or the
/// deadline passes; returns completions.
fn drive(url: &str, deadline: Instant) -> u64 {
    let client = HttpClient {
        max_redirects: 64,
        self_redirect_pause: Duration::from_millis(5),
        timeout: Duration::from_millis(500),
    };
    let mut done = 0;
    while Instant::now() < deadline {
        if let Ok(r) = client.get(url) {
            if r.response.status == StatusCode::OK {
                done += 1;
            }
        }
    }
    done
}

fn main() {
    let g = system();
    let levels = g.access_levels();
    let mut failed = false;

    // --- L7: credit gate + self-redirect over real HTTP. ---
    let origin =
        OriginServer::bind("127.0.0.1:0", 2000.0, 64, Duration::from_secs(2)).expect("origin");
    let l7_ctrl = AdmissionControl::new(
        0,
        &levels,
        SchedulerConfig::community_default(),
        Coordinator::new(Topology::star(1, 0.0), 0.0),
    );
    let l7 = L7Redirector::start(
        "127.0.0.1:0",
        L7Config {
            principal_names: vec!["S".into(), "A".into()],
            backends: [(0, origin.addr())].into(),
        },
        Arc::clone(&l7_ctrl),
    )
    .expect("l7 redirector");
    let l7_done = drive(
        &format!("http://{}/org/A/page", l7.addr()),
        Instant::now() + Duration::from_millis(900),
    );
    println!("l7_completed: {l7_done}");
    println!("l7_counters: {}", live_counters_json(&l7_ctrl.counters_snapshot()).to_pretty());
    if l7_done == 0 {
        eprintln!("FAIL: no request completed through the L7 redirector");
        failed = true;
    }

    // --- L4: accept-time admission + parking over raw TCP splicing. ---
    let a = covenant_agreements::PrincipalId(1);
    let l4_ctrl = AdmissionControl::new(
        0,
        &levels,
        SchedulerConfig::community_default(),
        Coordinator::new(Topology::star(1, 0.0), 0.0),
    );
    let l4 = L4Redirector::start(
        L4Config {
            services: vec![L4Service { principal: a, bind: "127.0.0.1:0".into() }],
            backends: HashMap::from([(0, origin.addr())]),
            park_limit: 256,
            live_limit: 1024,
        },
        Arc::clone(&l4_ctrl),
    )
    .expect("l4 redirector");
    let l4_done = drive(
        &format!("http://{}/page", l4.service_addr(a).expect("service addr")),
        Instant::now() + Duration::from_millis(900),
    );
    println!("l4_completed: {l4_done}");
    println!("l4_counters: {}", live_counters_json(&l4_ctrl.counters_snapshot()).to_pretty());
    if l4_done == 0 {
        eprintln!("FAIL: no request completed through the L4 proxy");
        failed = true;
    }

    // Both control planes must have actually rolled windows and admitted.
    for (name, ctrl) in [("l7", &l7_ctrl), ("l4", &l4_ctrl)] {
        let c = ctrl.counters_snapshot();
        if c.admitted == 0 {
            eprintln!("FAIL: {name} control plane admitted nothing");
            failed = true;
        }
    }

    drop(l7);
    drop(l4);
    if failed {
        std::process::exit(1);
    }
    println!("live smoke: OK");
}
