//! Multi-process cluster soak: launch a real 3-process combining tree
//! (root + two redirector leaves), drive HTTP load through both leaves'
//! data planes for a few seconds, then scrape every node's `/metrics`
//! endpoint and assert the deployment actually did its job:
//!
//! - every node exchanged wire frames and completed aggregation rounds;
//! - both redirectors admitted traffic (the enforcement core ran);
//! - the exposition bodies carry the documented metric families.
//!
//! Run by `scripts/tier1.sh`; exits non-zero on any failure. Pass a load
//! duration in seconds to soak longer (default 4).

use covenant_cluster::{maybe_run_node, Cluster};
use covenant_core::DeploymentSpec;
use covenant_http::{HttpClient, StatusCode};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Three nodes: root 0, redirector leaves 1 and 2. A is entitled to at
/// least half of S's 200 req/s, B to at least 30%.
const SPEC: &str = r#"{
  "principals": [
    {"name": "S", "capacity": 200.0},
    {"name": "A"},
    {"name": "B"}
  ],
  "agreements": [
    {"issuer": "S", "holder": "A", "lb": 0.5, "ub": 1.0},
    {"issuer": "S", "holder": "B", "lb": 0.3, "ub": 1.0}
  ],
  "redirector_tree": [null, 0, 0],
  "window_secs": 0.1,
  "clients": [],
  "duration": 5.0
}"#;

/// Pulls `url` as fast as completions allow until `stop`.
fn load_thread(
    addr: SocketAddr,
    path: &str,
    done: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let url = format!("http://{addr}{path}");
    std::thread::spawn(move || {
        let client = HttpClient {
            max_redirects: 64,
            self_redirect_pause: Duration::from_millis(5),
            timeout: Duration::from_millis(800),
        };
        while !stop.load(Ordering::Relaxed) {
            if let Ok(r) = client.get(&url) {
                if r.response.status == StatusCode::OK {
                    done.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    })
}

/// Extracts the value of the first sample of `family` in an exposition
/// body (ignores `# TYPE` lines; labels don't matter for the checks).
fn metric(body: &str, family: &str) -> Option<f64> {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.starts_with(family) && l[family.len()..].starts_with('{'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

fn main() {
    // Re-exec hook: child processes take the node path here.
    maybe_run_node();

    let secs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse::<f64>().ok())
        .unwrap_or(4.0)
        .clamp(1.0, 900.0);
    let spec = DeploymentSpec::from_json(SPEC).expect("soak spec parses");
    let mut cluster = Cluster::launch(&spec).expect("cluster launches");
    let redirectors = cluster.redirector_addrs();
    assert_eq!(redirectors.len(), 2, "both leaves run data planes");
    println!("cluster up: origin {}, redirectors {redirectors:?}", cluster.origin_addr());

    let stop = Arc::new(AtomicBool::new(false));
    let a_done = Arc::new(AtomicU64::new(0));
    let b_done = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..2 {
        handles.push(load_thread(
            redirectors[0],
            "/org/A/page",
            Arc::clone(&a_done),
            Arc::clone(&stop),
        ));
        handles.push(load_thread(
            redirectors[1],
            "/org/B/page",
            Arc::clone(&b_done),
            Arc::clone(&stop),
        ));
    }
    let t0 = Instant::now();
    while t0.elapsed().as_secs_f64() < secs {
        std::thread::sleep(Duration::from_millis(50));
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let (a, b) = (a_done.load(Ordering::Relaxed), b_done.load(Ordering::Relaxed));
    println!("completions over {secs:.1} s: A {a}, B {b}");

    let mut failed = false;
    if a == 0 || b == 0 {
        eprintln!("FAIL: a redirector served nothing (A {a}, B {b})");
        failed = true;
    }

    // Scrape every process and check the tree actually ran everywhere.
    let required_everywhere = [
        "covenant_tree_frames_sent",
        "covenant_tree_frames_received",
        "covenant_tree_rounds_completed",
        "covenant_tree_rounds_forced",
        "covenant_tree_reconnects",
        "covenant_tree_rtt_us",
    ];
    for node in [0usize, 1, 2] {
        let body = match cluster.scrape(node) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("FAIL: scraping node {node}: {e}");
                failed = true;
                continue;
            }
        };
        for family in required_everywhere {
            if metric(&body, family).is_none() {
                eprintln!("FAIL: node {node} /metrics missing {family}");
                failed = true;
            }
        }
        let frames = metric(&body, "covenant_tree_frames_sent").unwrap_or(0.0);
        let rounds = metric(&body, "covenant_tree_rounds_completed").unwrap_or(0.0);
        println!("node {node}: frames_sent {frames}, rounds_completed {rounds}");
        if frames < 1.0 {
            eprintln!("FAIL: node {node} sent no wire frames");
            failed = true;
        }
        if rounds < 1.0 {
            eprintln!("FAIL: node {node} completed no aggregation rounds");
            failed = true;
        }
        if node > 0 {
            let admitted = metric(&body, "covenant_admitted").unwrap_or(0.0);
            println!("node {node}: admitted {admitted}");
            if admitted < 1.0 {
                eprintln!("FAIL: redirector {node} admitted nothing");
                failed = true;
            }
        }
    }

    cluster.shutdown();
    if failed {
        std::process::exit(1);
    }
    println!("cluster soak: OK");
}
