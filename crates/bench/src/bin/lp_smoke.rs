//! Warm-solver smoke gate for tier-1: steady-state window solves at
//! n = 256 principals must stay far inside the paper's 100 ms window
//! budget, and the warm engine must never hand a window of this shape to
//! the dense fallback (whose tableau is quadratic in `n²` and would blow
//! the budget by orders of magnitude).
//!
//! The run primes a prepared community skeleton with one cold window,
//! then solves a sequence of rhs-perturbed windows through the persistent
//! warm basis — the exact steady-state path `WindowScheduler` drives every
//! scheduling window — and fails loudly (nonzero exit) if any warm window
//! exceeds a conservative fraction of the budget.

use covenant_bench::bipartite_graph;
use covenant_lp::SimplexWorkspace;
use covenant_sched::PreparedCommunity;
use std::time::Instant;

/// Principal count of the gated workload.
const N: usize = 256;
/// Perturbed steady-state windows to drive.
const WINDOWS: usize = 24;
/// Per-window warm-solve budget: a quarter of the paper's 100 ms window,
/// leaving generous headroom for slow CI machines.
const BUDGET_MS: f64 = 25.0;

fn main() {
    // Two-tier provider/consumer community: keeps the exact path closure
    // linear so the gate times the LP, not workload construction.
    let g = bipartite_graph(N, 42);
    let levels = g.access_levels().scaled(0.1);
    let mut prepared = PreparedCommunity::new(&levels, None);
    let mut ws = SimplexWorkspace::new();

    let base: Vec<f64> = (0..N).map(|i| 10.0 + (i as f64) * 3.0).collect();
    let cold_start = Instant::now();
    let plan = prepared.plan_with(&mut ws, &base);
    let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;
    assert!(plan.theta.unwrap_or(0.0) > 0.0, "cold window produced an empty plan");

    let mut worst_ms: f64 = 0.0;
    for w in 0..WINDOWS {
        // Window-to-window queue drift: a few percent, like the EWMA
        // estimator produces in the figure scenarios' steady phases.
        let queues: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, q)| q * (1.0 + 0.03 * (((w + i) % 7) as f64 - 3.0) / 3.0))
            .collect();
        let start = Instant::now();
        let plan = prepared.plan_with(&mut ws, &queues);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        worst_ms = worst_ms.max(ms);
        assert!(plan.theta.unwrap_or(0.0) > 0.0, "window {w} produced an empty plan");
        assert!(
            ms < BUDGET_MS,
            "warm window {w} took {ms:.2} ms (budget {BUDGET_MS} ms)"
        );
    }

    let stats = prepared.warm_stats();
    assert_eq!(
        prepared.dense_fallbacks(),
        0,
        "warm engine refused a steady-state window"
    );
    assert!(
        stats.warm_solves >= WINDOWS as u64,
        "expected ≥{WINDOWS} warm solves, got {stats:?}"
    );
    println!(
        "lp smoke: n={N} cold {cold_ms:.2} ms, {WINDOWS} warm windows worst \
         {worst_ms:.2} ms (budget {BUDGET_MS} ms), {} pivots total, \
         {} refactorizations, 0 dense fallbacks",
        stats.pivots, stats.refactorizations
    );
}
