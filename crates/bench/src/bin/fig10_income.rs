//! Figure 10 — maximize provider income.
//!
//! Provider with two 320 req/s servers; A [0.8,1] pays more per extra
//! request than B [0.2,1]. Under contention B is pinned to its mandatory
//! 128 req/s while A soaks up the rest; B bursts whenever A's clients are
//! idle. Expected levels: (512,128) → (0,400) → (400,240) → (0,400).

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let outcome = covenant_core::scenarios::fig10(50.0).run();
    if csv {
        print!("{}", outcome.to_csv());
        return;
    }
    println!("Figure 10: provider income maximization (two 320 req/s servers, pA > pB)\n");
    println!("{}", outcome.phase_table());
    println!("paper levels: (A 512, B 128) / (0, 400) / (400, 240) / (0, 400)");
}
