//! §4.1 — explicit queuing bunches requests; implicit (credit) queuing
//! restores linear scaling.
//!
//! Sweeps offered load against a V=320 server for both queuing modes with
//! closed-loop clients. The explicit scheme's window-boundary release adds
//! ~half a window of latency to every request, throttling closed-loop
//! clients well below capacity; the credit scheme admits in-quota requests
//! immediately and tracks offered load linearly until the server saturates
//! at 320 req/s — the paper's §4.1 finding.

use covenant_core::scenarios::queuing_mode_rate;
use covenant_sim::QueueMode;

fn main() {
    println!("{:>10} {:>12} {:>12}", "offered", "explicit", "implicit");
    for offered in [40.0, 80.0, 120.0, 160.0, 200.0, 240.0, 280.0, 320.0, 360.0, 400.0, 480.0] {
        let explicit = queuing_mode_rate(QueueMode::Explicit, offered, 30.0);
        let implicit =
            queuing_mode_rate(QueueMode::CreditRetry { retry_delay: 0.05 }, offered, 30.0);
        println!("{offered:>10.0} {explicit:>12.1} {implicit:>12.1}");
    }
    println!("\npaper: with implicit queuing \"server processing rates linearly increase");
    println!("with client activity until the server saturates at 320 requests per second\";");
    println!("explicit queuing bunches requests and scales sub-linearly.");
}
