//! Ablation — coordination-lag sensitivity (Figure 8 generalized).
//!
//! Sweeps the combining-tree information lag and reports the length of the
//! competition transient after A's load starts (time until B's rate falls
//! within 10% of its enforced 65 req/s level). The transient should track
//! the lag roughly one-for-one — the paper's claim that the scheme copes
//! gracefully "as long as request patterns are stable for time scales
//! longer than network delays".
//!
//! Each lag is an independent 120 s simulated run, so the sweep fans out
//! across worker threads (`COVENANT_SWEEP_THREADS` overrides the count)
//! and prints rows in sweep order.

use covenant_agreements::PrincipalId;
use covenant_bench::run_sweep;
use covenant_core::scenarios::fig8;

fn main() {
    println!("{:>10} {:>18} {:>14} {:>14}", "lag s", "transient s", "ph4 A req/s", "ph4 B req/s");
    let lags = vec![0.0, 1.0, 2.0, 5.0, 10.0, 20.0];
    let rows = run_sweep(lags, |_, &lag| {
        let outcome = fig8(lag).run();
        let b = PrincipalId(2);
        // A's load starts at t=60; find when B settles to 65 ± 10%.
        let series = outcome.report.rates.series(b);
        let settle = series
            .iter()
            .find(|(t, r)| *t >= 60.0 && (r - 65.0).abs() <= 6.5)
            .map(|(t, _)| t - 60.0)
            .unwrap_or(f64::NAN);
        let p4 = outcome
            .phases
            .iter()
            .find(|p| p.name.contains("phase 4"))
            .expect("phase 4");
        format!(
            "{:>10.0} {:>18.0} {:>14.1} {:>14.1}",
            lag,
            settle,
            p4.rate("A"),
            p4.rate("B")
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!("\npaper (lag 10): ~10 s transient, then A 255 / B 65");
}
