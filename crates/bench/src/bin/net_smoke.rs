//! CI smoke check for the shared-link scenario pipeline.
//!
//! Loads the shipped `examples/scenarios/flash_crowd.json` (a bottlenecked
//! two-redirector deployment whose second link saturates during the
//! crowd), runs it twice on the streaming engine, and fails (nonzero exit)
//! if the run lost its replay determinism, carried no link transfers, or
//! the event heap stopped being concurrency-bounded — the link model must
//! queue backlog in link state, never as O(backlog) heap entries. Wired
//! into `scripts/tier1.sh`.
//!
//! `COVENANT_NET_SMOKE_MAX_QUEUE` overrides the peak-event-queue ceiling.

use covenant_core::{sim_counters, ScenarioSpec};
use covenant_sim::Simulation;
use std::path::PathBuf;

fn main() {
    let max_queue: usize = std::env::var("COVENANT_NET_SMOKE_MAX_QUEUE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8192);

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("examples/scenarios/flash_crowd.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let sc = ScenarioSpec::from_json(&text).expect("shipped scenario parses");

    let a = Simulation::new(sc.build_sim().expect("shipped scenario builds")).run();
    let b = Simulation::new(sc.build_sim().expect("shipped scenario builds")).run();
    if !a.outcome_eq(&b) {
        eprintln!("FAIL: flash_crowd.json replayed with a different outcome under the same seed");
        std::process::exit(1);
    }

    let net = sim_counters(&a).net.expect("scenario declares links");
    println!(
        "net smoke: {} transfers, {:.2} MB, peak {} concurrent, mean transfer {:.1} ms, \
         peak event queue {} (ceiling {})",
        net.transfers,
        net.bytes / 1.0e6,
        net.peak_concurrent,
        net.mean_transfer_secs * 1000.0,
        a.peak_event_queue,
        max_queue
    );
    if net.transfers == 0 {
        eprintln!("FAIL: no reply transfers crossed the shared links");
        std::process::exit(1);
    }
    if a.peak_event_queue > max_queue {
        eprintln!(
            "FAIL: peak event queue {} exceeds {max_queue}: the link backlog is leaking \
             into the event heap",
            a.peak_event_queue
        );
        std::process::exit(1);
    }
    println!("net smoke OK");
}
