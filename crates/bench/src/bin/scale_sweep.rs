//! Ablation — enforcement quality and cost as the community grows.
//!
//! The paper argues the scheme scales because per-window work depends only
//! on the number of principals. This sweep grows the principal count,
//! floods everyone, and reports (a) the worst mandatory-guarantee
//! shortfall across principals — enforcement quality — and (b) the
//! wall-clock cost of the whole simulated run (dominated by per-window LP
//! solves).
//!
//! Sweep points run in parallel across worker threads
//! (`COVENANT_SWEEP_THREADS` overrides the count) and print in sweep
//! order; note the per-point wall-clock column measures a possibly-shared
//! core when workers > 1.

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_bench::run_sweep;
use covenant_sim::{SimConfig, Simulation};
use covenant_workload::{ClientMachine, PhasedLoad};

fn main() {
    println!(
        "{:>12} {:>14} {:>18} {:>16}",
        "principals", "pool req/s", "worst floor miss", "sim wall ms"
    );
    let sizes = vec![2usize, 4, 8, 12, 16, 20];
    let rows = run_sweep(sizes, |_, &n| {
        // Provider with V = 100·n; customer i holds lb = 0.9/n, ub = 1.
        let mut g = AgreementGraph::new();
        let pool = 100.0 * n as f64;
        let s = g.add_principal("S", pool);
        let customers: Vec<_> = (0..n)
            .map(|i| g.add_principal(format!("C{i}"), 0.0))
            .collect();
        let lb = 0.9 / n as f64;
        for &c in &customers {
            g.add_agreement(s, c, lb, 1.0).unwrap();
        }
        let mandatory = lb * pool;

        let duration = 15.0;
        let mut cfg = SimConfig::new(g, duration);
        for (i, &c) in customers.iter().enumerate() {
            cfg = cfg.client(
                ClientMachine::uniform(i, c, PhasedLoad::constant(2.0 * mandatory, duration)),
                0,
            );
        }
        let report = Simulation::new(cfg).run();
        let wall = report.wall_secs * 1000.0;

        let worst_miss = customers
            .iter()
            .map(|&c| {
                let rate = report.rates.mean_rate_secs(PrincipalId(c.0), 5.0, duration);
                (mandatory - rate).max(0.0)
            })
            .fold(0.0, f64::max);
        format!("{n:>12} {pool:>14.0} {worst_miss:>18.2} {wall:>16.0}")
    });
    for row in rows {
        println!("{row}");
    }
    println!("\nfloor miss ≈ 0 at every size: guarantees hold as the community grows;");
    println!("wall time grows with the LP (n²+1 variables), not with traffic volume.");
}
