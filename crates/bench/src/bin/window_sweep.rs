//! Ablation — scheduling-window-length sensitivity.
//!
//! The paper fixes 100 ms windows. This sweep re-runs the Figure 6 phase-1
//! contention with windows from 25 ms to 1.6 s and reports how far each
//! principal's served rate lands from the agreement-implied target
//! (A 185, B 135), plus A's mean response time. Longer windows track the
//! targets but add queueing delay; shorter windows react faster at higher
//! coordination cost (more LP solves and tree rounds per second).
//!
//! Sweep points are independent runs, so they fan out across worker
//! threads (`COVENANT_SWEEP_THREADS` overrides the count); rows print in
//! sweep order regardless of completion order.

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_bench::run_sweep;
use covenant_sim::{SimConfig, Simulation};
use covenant_tree::Topology;
use covenant_workload::{ClientMachine, PhasedLoad};

fn main() {
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>12}",
        "window ms", "A req/s", "B req/s", "A resp ms", "tree msgs/s"
    );
    let windows = vec![0.025, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6];
    let rows = run_sweep(windows, |_, &window| {
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 320.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();

        let dur = 30.0;
        let mut cfg = SimConfig::new(g, dur)
            .with_tree(Topology::star(2, 0.0), 0.0)
            .closed_loop_client(ClientMachine::uniform(0, a, PhasedLoad::constant(135.0, dur)), 0, 64)
            .closed_loop_client(ClientMachine::uniform(1, a, PhasedLoad::constant(135.0, dur)), 0, 64)
            .closed_loop_client(ClientMachine::uniform(2, b, PhasedLoad::constant(135.0, dur)), 1, 64);
        cfg.window_secs = window;
        let r = Simulation::new(cfg).run();
        format!(
            "{:>12.0} {:>10.1} {:>10.1} {:>12.1} {:>12.1}",
            window * 1000.0,
            r.rates.mean_rate_secs(PrincipalId(1), 10.0, dur),
            r.rates.mean_rate_secs(PrincipalId(2), 10.0, dur),
            r.response[1].mean().unwrap_or(0.0) * 1000.0,
            r.tree_messages as f64 / dur,
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!("\ntargets: A 185, B 135 (paper uses 100 ms windows)");
}
