//! Live data-plane throughput: admission verdicts per second through the
//! sharded L7 reactor, on loopback, measured server-side.
//!
//! A driver thread keeps several keep-alive connections saturated with
//! pipelined bursts of `GET /org/A/…` requests; every request costs one
//! admission verdict in a shard's enforcement core, so the per-shard
//! [`covenant_enforce::ShardStats`] deltas over the measured interval are
//! the authoritative throughput number (the client-side completion count
//! is a cross-check).
//!
//! Modes:
//!
//! * default (smoke, run by `scripts/tier1.sh`): one shard, sub-second
//!   measure, exits non-zero below the floor (`COVENANT_LIVE_FLOOR`
//!   verdicts/s, default 500 000 — conservative so CI noise never flakes;
//!   a single shard measures several times higher).
//! * `--full`: measures the 1/2/4-shard scaling curve for three seconds
//!   each and writes `BENCH_live.json` at the workspace root.

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_coord::Coordinator;
use covenant_core::json::Value;
use covenant_core::live_counters_sharded_json;
use covenant_enforce::ShardSnapshot;
use covenant_l7::{L7Config, ShardedL7};
use covenant_sched::SchedulerConfig;
use covenant_tree::Topology;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Pipelined requests per burst, per connection. Large bursts are what
/// turn readiness wakes into big verdict batches.
const BURST: usize = 512;
const REQUEST: &[u8] = b"GET /org/A/p HTTP/1.1\r\nhost: b\r\n\r\n";

/// One measured configuration.
struct Measure {
    shards: usize,
    secs: f64,
    verdicts: u64,
    admitted: u64,
    wakes: u64,
    driven: u64,
    snaps: Vec<ShardSnapshot>,
}

impl Measure {
    fn verdicts_per_sec(&self) -> f64 {
        self.verdicts as f64 / self.secs
    }

    fn to_json(&self) -> Value {
        let per_wake = self.verdicts as f64 / (self.wakes.max(1)) as f64;
        Value::Obj(vec![
            ("shards".into(), Value::Num(self.shards as f64)),
            ("duration_secs".into(), Value::Num(self.secs)),
            ("verdicts".into(), Value::Num(self.verdicts as f64)),
            ("verdicts_per_sec".into(), Value::Num(self.verdicts_per_sec())),
            ("admitted_per_sec".into(), Value::Num(self.admitted as f64 / self.secs)),
            ("reactor_wakes".into(), Value::Num(self.wakes as f64)),
            ("verdicts_per_wake".into(), Value::Num(per_wake)),
            ("client_responses".into(), Value::Num(self.driven as f64)),
            ("counters".into(), live_counters_sharded_json(&self.snaps)),
        ])
    }
}

/// Counts `\r\n\r\n` occurrences across chunk boundaries; `state` is how
/// far into the pattern the previous chunk ended.
fn count_terminators(bytes: &[u8], state: &mut usize) -> usize {
    const PAT: [u8; 4] = *b"\r\n\r\n";
    let mut count = 0;
    for &b in bytes {
        if b == PAT[*state] {
            *state += 1;
            if *state == PAT.len() {
                count += 1;
                *state = 0;
            }
        } else if b == b'\r' {
            *state = 1;
        } else {
            *state = 0;
        }
    }
    count
}

/// Writes one burst down every connection, then reads every response
/// back. Returns responses observed (each one is one verdict served).
fn pump_round(conns: &mut [TcpStream], burst: &[u8], buf: &mut [u8]) -> u64 {
    for c in conns.iter_mut() {
        c.write_all(burst).expect("burst write");
    }
    let mut total = 0u64;
    for c in conns.iter_mut() {
        let mut terms = 0usize;
        let mut state = 0usize;
        while terms < BURST {
            let n = c.read(buf).expect("burst read");
            assert!(n > 0, "server closed mid-burst");
            terms += count_terminators(buf.get(..n).expect("read len"), &mut state);
        }
        total += terms as u64;
    }
    total
}

/// Stands up a `shards`-wide reactor against an unlimited-quota principal
/// and saturates it for `duration`. Capacity is sized so the credit gate
/// admits essentially everything — the measurement is the verdict path
/// itself, not a starved scheduler.
fn run_once(shards: usize, duration: Duration) -> Measure {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 50_000_000.0);
    let _a = g.add_principal("A", 0.0);
    g.add_agreement(s, PrincipalId(1), 1.0, 1.0).expect("agreement");
    let levels = g.access_levels();

    let backend: SocketAddr = "127.0.0.1:9".parse().expect("backend addr");
    let l7 = ShardedL7::start(
        "127.0.0.1:0",
        L7Config {
            principal_names: vec!["S".into(), "A".into()],
            backends: [(0, backend)].into(),
        },
        shards,
        &levels,
        SchedulerConfig::community_default(),
        Coordinator::new(Topology::star(shards.max(1), 0.0), 0.0),
    )
    .expect("sharded l7");

    // Several connections per shard so the reuseport hash spreads load.
    let n_conns = (2 * shards).max(2);
    let mut conns: Vec<TcpStream> = (0..n_conns)
        .map(|_| {
            let c = TcpStream::connect(l7.addr()).expect("connect");
            c.set_nodelay(true).expect("nodelay");
            c.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
            c
        })
        .collect();
    let mut burst = Vec::with_capacity(BURST * REQUEST.len());
    for _ in 0..BURST {
        burst.extend_from_slice(REQUEST);
    }
    let mut buf = vec![0u8; 64 * 1024];

    // Warm up across at least one window boundary so quota is installed
    // and buffers have grown, then baseline the counters.
    pump_round(&mut conns, &burst, &mut buf);
    std::thread::sleep(Duration::from_millis(120));
    pump_round(&mut conns, &burst, &mut buf);
    std::thread::sleep(Duration::from_millis(10)); // let the wake's stats store land
    let base = l7.shard_snapshots();

    let t0 = Instant::now();
    let mut driven = 0u64;
    while t0.elapsed() < duration {
        driven += pump_round(&mut conns, &burst, &mut buf);
    }
    let secs = t0.elapsed().as_secs_f64();
    std::thread::sleep(Duration::from_millis(10));
    let snaps = l7.shard_snapshots();

    let delta = |f: fn(&ShardSnapshot) -> u64| -> u64 {
        snaps.iter().map(&f).sum::<u64>() - base.iter().map(&f).sum::<u64>()
    };
    Measure {
        shards,
        secs,
        verdicts: delta(|s| s.batched_verdicts),
        admitted: delta(|s| s.counters.admitted),
        wakes: delta(|s| s.reactor_wakes),
        driven,
        snaps,
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    if !full {
        // Smoke: one shard, sub-second, floor-guarded.
        let floor: f64 = std::env::var("COVENANT_LIVE_FLOOR")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(500_000.0);
        let m = run_once(1, Duration::from_millis(700));
        let rate = m.verdicts_per_sec();
        println!(
            "live_throughput smoke: {:.0} verdicts/s (floor {floor:.0}), {:.1} verdicts/wake",
            rate,
            m.verdicts as f64 / m.wakes.max(1) as f64
        );
        if m.driven != m.verdicts {
            // Client observed a different count than the shard recorded:
            // tolerate boundary noise of one burst, nothing more.
            let drift = m.driven.abs_diff(m.verdicts);
            if drift > (BURST * 2) as u64 {
                eprintln!("FAIL: client/server verdict drift {drift}");
                std::process::exit(1);
            }
        }
        if rate < floor {
            eprintln!("FAIL: {rate:.0} verdicts/s below floor {floor:.0}");
            std::process::exit(1);
        }
        println!("live throughput smoke: OK");
        return;
    }

    // Full: the shard-scaling curve, written to BENCH_live.json.
    let mut curve = Vec::new();
    let mut peak = 0.0f64;
    for shards in [1usize, 2, 4] {
        let m = run_once(shards, Duration::from_secs(3));
        println!(
            "shards={}: {:.0} verdicts/s ({:.1} verdicts/wake, {} wakes)",
            m.shards,
            m.verdicts_per_sec(),
            m.verdicts as f64 / m.wakes.max(1) as f64,
            m.wakes
        );
        peak = peak.max(m.verdicts_per_sec());
        curve.push(m.to_json());
    }
    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("live_throughput".into())),
        ("transport".into(), Value::Str("sharded-l7-reactor (epoll, SO_REUSEPORT)".into())),
        ("burst".into(), Value::Num(BURST as f64)),
        ("target_admissions_per_sec".into(), Value::Num(1_000_000.0)),
        ("peak_admissions_per_sec".into(), Value::Num(peak)),
        ("curve".into(), Value::Arr(curve)),
    ]);
    std::fs::write("BENCH_live.json", doc.to_pretty()).expect("write BENCH_live.json");
    println!("wrote BENCH_live.json (peak {peak:.0} admissions/s)");
}
