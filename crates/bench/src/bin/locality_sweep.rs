//! Ablation — locality caps (§3.1.2's `Σ_k x_ki ≤ c_i` extension).
//!
//! A redirector far from one server caps how many requests per window it
//! will push there. The sweep shows the enforcement/locality trade-off:
//! tight caps keep traffic local (cheap forwarding) at the price of unused
//! remote capacity; loose caps recover full utilization.
//!
//! Points fan out across worker threads like the other sweeps
//! (`COVENANT_SWEEP_THREADS` overrides the count) — each point is one LP
//! solve, so this mostly demonstrates the harness on cheap work.

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_bench::run_sweep;
use covenant_sched::{CommunityScheduler, LocalityCaps};

fn main() {
    // Community of two servers (A: 100, B: 100), A and B flooding; the
    // planning redirector is co-located with A's server and applies a cap
    // on pushes to B's server.
    let mut g = AgreementGraph::new();
    let a = g.add_principal("A", 100.0);
    let b = g.add_principal("B", 100.0);
    g.add_agreement(a, b, 0.3, 0.8).unwrap();
    g.add_agreement(b, a, 0.3, 0.8).unwrap();
    let lv = g.access_levels().scaled(0.1); // per 100 ms window

    println!(
        "{:>14} {:>10} {:>10} {:>12} {:>12}",
        "remote cap/w", "A req/w", "B req/w", "remote load", "total util %"
    );
    let caps = vec![0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, f64::INFINITY];
    let rows = run_sweep(caps, |_, &cap| {
        let sched = CommunityScheduler::with_locality(LocalityCaps(vec![
            f64::MAX.min(1e12),
            cap.min(1e12),
        ]));
        let plan = sched.plan(&lv, &[30.0, 30.0]);
        let remote = plan.server_load(1);
        let total = plan.total_admitted();
        format!(
            "{:>14} {:>10.2} {:>10.2} {:>12.2} {:>12.0}",
            if cap.is_infinite() { "inf".to_string() } else { format!("{cap:.0}") },
            plan.admitted(PrincipalId(0)),
            plan.admitted(PrincipalId(1)),
            remote,
            total / 20.0 * 100.0
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!("\n(20 requests/window = both servers fully used)");
}
