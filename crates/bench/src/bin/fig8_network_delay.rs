//! Figure 8 — effects of network propagation delay.
//!
//! Queue-length aggregates reach each redirector 10 s late. The run shows
//! the conservative half-mandatory start, the lag-long competition
//! transients at each load change, and exact enforcement once information
//! arrives. Pass a different lag as the first argument.

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let lag: f64 = std::env::args()
        .skip(1)
        .find(|a| a != "--csv")
        .and_then(|a| a.parse().ok())
        .unwrap_or(10.0);
    let outcome = covenant_core::scenarios::fig8(lag).run();
    if csv {
        print!("{}", outcome.to_csv());
        return;
    }
    println!("Figure 8: network delay {lag} s (V=320, A [0.8,1] 2 clients, B [0.2,1] 1 client)\n");
    println!("{}", outcome.phase_table());
    println!("paper levels (lag 10 s): phase 1 B≈30 (half of B's mandatory 64);");
    println!("  phase 2 B≈135; phase 4 A≈255 B≈65; phase 6 B≈135");
}
