//! Transfer-time curves: fixed-delay network vs shared-bottleneck links.
//!
//! Runs one canonical two-tenant deployment (200 req/s offered, 6 KB mean
//! replies ⇒ ~1.23 MB/s of reply traffic) through the scenario API at a
//! ladder of link rates under both disciplines, plus the fixed-delay
//! degenerate configuration, and writes the `transfer_curves` section of
//! `BENCH_net.json`. The interesting shape: as the link rate approaches
//! the offered byte rate from above, FIFO mean transfer time blows up
//! faster than fair-share (heavy-tailed replies let one 500 KB response
//! wedge the queue), while far above the knee both converge to the
//! serialization time and the fixed-delay model's constant.
//!
//! Sweep points are independent scenario runs with fixed seeds, fanned
//! across worker threads; results are identical for any worker count.

use covenant_bench::{emit_net_bench_section, run_sweep};
use covenant_core::{sim_counters, ScenarioSpec};
use covenant_sim::Simulation;

/// Mean reply size, bytes (the paper's 6 KB average).
const UNIT_BYTES: f64 = 6144.0;
/// Total offered load across both tenants, req/s.
const OFFERED_REQ_S: f64 = 200.0;
/// Link rate ladder, as multiples of the offered byte rate.
const RATE_FACTORS: [f64; 5] = [0.9, 1.2, 1.6, 2.4, 4.0];

fn scenario_json(net: Option<(f64, &str)>) -> String {
    let net_block = match net {
        Some((rate, discipline)) => format!(
            ",\n  \"net\": {{\"links\": [{{\"rate_bytes_per_sec\": {rate}, \
             \"discipline\": \"{discipline}\"}}], \"unit_bytes\": {UNIT_BYTES}}}"
        ),
        None => String::new(),
    };
    format!(
        r#"{{
  "principals": [
    {{"name": "S", "capacity": 300.0}},
    {{"name": "A"}},
    {{"name": "B"}}
  ],
  "agreements": [
    {{"issuer": "S", "holder": "A", "lb": 0.6, "ub": 1.0}},
    {{"issuer": "S", "holder": "B", "lb": 0.3, "ub": 1.0}}
  ],
  "clients": [
    {{"principal": "A", "phases": [[40.0, 130.0]]}},
    {{"principal": "B", "phases": [[40.0, 70.0]]}}
  ],
  "duration": 40.0,
  "seed": 17{net_block}
}}"#
    )
}

struct Point {
    label: String,
    discipline: Option<&'static str>,
    rate: f64,
}

fn main() {
    let offered_bytes = OFFERED_REQ_S * UNIT_BYTES;
    let mut points = vec![Point { label: "fixed_delay".into(), discipline: None, rate: 0.0 }];
    for discipline in ["fifo", "fair_share"] {
        for f in RATE_FACTORS {
            points.push(Point {
                label: format!("{discipline}@{f}x"),
                discipline: Some(discipline),
                rate: offered_bytes * f,
            });
        }
    }

    let rows = run_sweep(points, |_, p| {
        let json = scenario_json(p.discipline.map(|d| (p.rate, d)));
        let sc = ScenarioSpec::from_json(&json).expect("sweep scenario parses");
        let report = Simulation::new(sc.build_sim().expect("sweep scenario builds")).run();
        let delivered: u64 = report.response.iter().map(|r| r.count).sum();
        let total_resp: f64 = report.response.iter().map(|r| r.total).sum();
        let mean_resp_ms =
            if delivered > 0 { total_resp / delivered as f64 * 1000.0 } else { 0.0 };
        let net = sim_counters(&report).net;
        let (transfers, mean_transfer_ms) =
            net.map_or((0, 0.0), |n| (n.transfers, n.mean_transfer_secs * 1000.0));
        let row = format!(
            "{{\"point\": \"{}\", \"discipline\": {}, \"rate_bytes_per_sec\": {:.0}, \
             \"delivered\": {delivered}, \"transfers\": {transfers}, \
             \"mean_transfer_ms\": {mean_transfer_ms:.3}, \"mean_response_ms\": {mean_resp_ms:.3}}}",
            p.label,
            p.discipline.map_or("null".to_string(), |d| format!("\"{d}\"")),
            p.rate,
        );
        println!("net sweep: {row}");
        row
    });

    let body = format!(
        "{{\"unit_bytes\": {UNIT_BYTES}, \"offered_req_s\": {OFFERED_REQ_S}, \
         \"offered_bytes_per_sec\": {offered_bytes:.0}, \"points\": [{}]}}",
        rows.join(", ")
    );
    emit_net_bench_section("transfer_curves", &body).expect("BENCH_net.json is writable");
    println!("net sweep: wrote transfer_curves ({} points) to BENCH_net.json", rows.len());
}
