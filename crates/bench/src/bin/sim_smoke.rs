//! CI smoke check for simulation-engine throughput.
//!
//! Runs a ~100k-request underloaded scenario on the streaming engine and
//! fails (nonzero exit) if event throughput drops below a conservative
//! floor or the event heap stops being concurrency-bounded. Wired into
//! `scripts/tier1.sh`; the floor errs far on the low side so slow CI
//! machines don't flake, while still catching order-of-magnitude
//! regressions (e.g. reintroducing O(total requests) heap behavior).
//!
//! `COVENANT_SMOKE_MIN_EPS` overrides the events/sec floor.

use covenant_agreements::AgreementGraph;
use covenant_sim::{SimConfig, Simulation};
use covenant_workload::{ClientMachine, PhasedLoad};

fn main() {
    let min_eps: f64 = std::env::var("COVENANT_SMOKE_MIN_EPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000.0);

    // ~100k requests: 4 clients × 250 req/s × 100 s, underloaded pool.
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 1500.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.2, 1.0).unwrap();
    g.add_agreement(s, b, 0.8, 1.0).unwrap();
    let dur = 100.0;
    let mut cfg = SimConfig::new(g, dur);
    for (i, p) in [(0, a), (1, a), (2, b), (3, b)] {
        cfg = cfg.client(ClientMachine::uniform(i, p, PhasedLoad::constant(250.0, dur)), 0);
    }

    let report = Simulation::new(cfg).run();
    let eps = report.events_per_sec();
    println!(
        "sim smoke: {} events in {:.2} s wall = {:.0} events/s (floor {:.0}), peak queue {}",
        report.events_processed, report.wall_secs, eps, min_eps, report.peak_event_queue
    );
    let offered: u64 = report.offered.iter().sum();
    assert!(offered >= 99_000, "scenario generated only {offered} requests");
    if eps < min_eps {
        eprintln!("FAIL: engine throughput {eps:.0} events/s below floor {min_eps:.0}");
        std::process::exit(1);
    }
    // The streaming engine's heap must stay bounded by concurrency, never
    // by run length (clients + in-flight + tick; 4096 allows deep server
    // backlogs but is far below the 100k-event materialized trace).
    if report.peak_event_queue > 4096 {
        eprintln!(
            "FAIL: peak event queue {} suggests O(total requests) scheduling",
            report.peak_event_queue
        );
        std::process::exit(1);
    }
    println!("sim smoke OK");
}
