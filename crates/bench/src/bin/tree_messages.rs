//! §3.2 — combining-tree message complexity: 2(n−1) vs pairwise n(n−1).
//!
//! Also reports each topology's information latency under a uniform 50 ms
//! edge delay, showing the fan-out/latency trade-off.

use covenant_tree::Topology;

fn main() {
    println!("{:>6} {:>12} {:>12} {:>10} {:>14} {:>14}",
        "nodes", "tree msgs", "pairwise", "ratio", "lat(bin) ms", "lat(star) ms");
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let bin = Topology::balanced(n, 2, 0.05);
        let star = Topology::star(n, 0.05);
        let worst_lag_bin = (0..n).map(|i| bin.information_lag(i)).fold(0.0, f64::max);
        let worst_lag_star = (0..n).map(|i| star.information_lag(i)).fold(0.0, f64::max);
        println!(
            "{:>6} {:>12} {:>12} {:>10.1} {:>14.0} {:>14.0}",
            n,
            bin.messages_per_round(),
            bin.pairwise_messages(),
            bin.pairwise_messages() as f64 / bin.messages_per_round().max(1) as f64,
            worst_lag_bin * 1000.0,
            worst_lag_star * 1000.0,
        );
    }
    println!("\npaper: a total of 2(n-1) message transmissions vs O(n^2) for pairwise exchange");
}
