//! Figure 7 — optional tickets allocated proportionally to demand.
//!
//! Community context: server V=250, both A and B hold [0.2, 1]; A runs two
//! clients, B one. The θ-maximizing scheduler serves A at twice B's rate,
//! minimizing the community-wide maximum response time.

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let outcome = covenant_core::scenarios::fig7(60.0).run();
    if csv {
        print!("{}", outcome.to_csv());
        return;
    }
    println!("Figure 7: minimize global response time (V=250, both [0.2,1])\n");
    println!("{}", outcome.phase_table());
    let a = outcome.phases[0].rate("A");
    let b = outcome.phases[0].rate("B");
    println!("A/B rate ratio: {:.2} (paper: 2.0 — A ≈ 167, B ≈ 83)", a / b);
}
