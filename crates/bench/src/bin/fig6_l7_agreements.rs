//! Figure 6 — sharing agreements respected in the distributed L7 scheme.
//!
//! Server V=320; A [0.2,1] with two 135 req/s clients via redirector R1,
//! B [0.8,1] with one client via R2. Three phases: both / only A / both.
//! Prints the per-second series (CSV with `--csv`) and the per-phase table.

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let outcome = covenant_core::scenarios::fig6(50.0).run();
    if csv {
        print!("{}", outcome.to_csv());
        return;
    }
    println!("Figure 6: L7 redirector, service-provider context (V=320, A [0.2,1], B [0.8,1])\n");
    println!("{}", outcome.phase_table());
    println!("paper levels: phase 1 (A≈185, B≈135); phase 2 (A≈270); phase 3 = phase 1");
}
