//! Figure 1 — end-point enforcement cannot handle distributed requests.
//!
//! Two 50 req/s servers; SLAs give A 20% and B 80% of the aggregate.
//! Locality-biased redirectors deliver (A:20,B:30) to S1 and (A:20,B:50)
//! to S2. Independent per-server enforcement aggregates to (A:30,B:70) —
//! violating B's 80% — while coordinated enforcement yields (A:20,B:80).

fn main() {
    let r = covenant_core::scenarios::fig1();
    println!("Figure 1: aggregate processing rates (req/s), demands A=40, B=80, ΣV=100");
    println!("{:<28}{:>8}{:>8}", "", "A", "B");
    println!(
        "{:<28}{:>8.1}{:>8.1}   <- violates B's 80% share",
        "end-point (uncoordinated)", r.uncoordinated.0, r.uncoordinated.1
    );
    println!(
        "{:<28}{:>8.1}{:>8.1}   <- SLA respected",
        "coordinated", r.coordinated.0, r.coordinated.1
    );
    println!("\npaper:   uncoordinated (30, 70); coordinated (20, 80)");
}
