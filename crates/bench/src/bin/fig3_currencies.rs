//! Figure 3 — ticket/currency valuation with transitive agreements.
//!
//! A (1000 u/s) shares [0.4,0.6] with B (1500 u/s); B shares [0.6,1.0]
//! with C. Prints every ticket's face and real value and each currency's
//! final (mandatory, optional) value; the paper's worked numbers are shown
//! alongside.

use covenant_agreements::{AgreementGraph, PrincipalId};

fn main() {
    let mut g = AgreementGraph::new();
    let a = g.add_principal("A", 1000.0);
    let b = g.add_principal("B", 1500.0);
    let c = g.add_principal("C", 0.0);
    g.add_agreement(a, b, 0.4, 0.6).unwrap();
    g.add_agreement(b, c, 0.6, 1.0).unwrap();

    let flows = g.flows();
    let v = g.capacities();

    println!("Figure 3: tickets and currencies");
    println!("\ncurrency mandatory real values:");
    for (name, p) in [("A", a), ("B", b), ("C", c)] {
        println!(
            "  {name}: {:>6.0}   (paper: A 1000, B 1900, C 1140)",
            flows.currency_mandatory_value(&v, p)
        );
    }

    println!("\ntickets (face -> real value):");
    let names = ["A", "B", "C"];
    for t in g.tickets() {
        let issuer_val = flows.currency_mandatory_value(&v, PrincipalId(t.issuer));
        let real = match t.kind {
            covenant_agreements::TicketKind::Mandatory => issuer_val * t.face / 100.0,
            covenant_agreements::TicketKind::Optional => {
                // Optional real value includes optional in-flows at ub —
                // report via the flow matrices for the exact figure.
                let lv = g.access_levels();
                // O-Ticket value = holder's optional in-flow from all paths.
                let holder = PrincipalId(t.holder);
                (0..g.len())
                    .map(|j| flows.oi(&v, PrincipalId(j), holder))
                    .sum::<f64>()
                    .min(lv.optional(holder))
            }
        };
        println!(
            "  {:?} {} -> {}: face {:>3.0}, real {:>5.0}",
            t.kind, names[t.issuer], names[t.holder], t.face, real
        );
    }
    println!("  (paper: M-Ticket1 400, O-Ticket2 200, M-Ticket3 1140, O-Ticket4 960)");

    let lv = g.access_levels();
    println!("\nfinal currency values (mandatory, optional):");
    for (name, p) in [("A", a), ("B", b), ("C", c)] {
        println!("  {name}: ({:>5.0}, {:>5.0})", lv.mandatory(p), lv.optional(p));
    }
    println!("  (paper: A (600,400), B (760,1340), C (1140,960))");
}
