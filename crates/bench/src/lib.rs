//! Shared helpers for the figure-regeneration binaries and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use covenant_agreements::AgreementGraph;

/// Builds a random-but-deterministic agreement graph with `n` principals,
/// edge probability `density`, and capacities in `[100, 1100)` — the
/// workload for LP/flow scaling benches.
pub fn random_graph(n: usize, density: f64, seed: u64) -> AgreementGraph {
    let mut rng = SmallLcg::new(seed);
    let mut g = AgreementGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| g.add_principal(format!("P{i}"), 100.0 + rng.next_f64() * 1000.0))
        .collect();
    for (x, &i) in ids.iter().enumerate() {
        // Budget of mandatory fraction to hand out.
        let mut budget: f64 = 0.9;
        for (y, &j) in ids.iter().enumerate() {
            if x == y || budget <= 0.02 {
                continue;
            }
            if rng.next_f64() < density {
                let lb = rng.next_f64() * budget.min(0.3);
                let ub = (lb + rng.next_f64() * 0.4).min(1.0);
                g.add_agreement(i, j, lb, ub).expect("within budget");
                budget -= lb;
            }
        }
    }
    g
}

/// A tiny self-contained LCG so the bench *library* stays free of external
/// dependencies (criterion and rand are dev-dependencies only).
mod rand_free {
    /// Deterministic 64-bit LCG.
    pub struct SmallLcg(u64);

    impl SmallLcg {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            SmallLcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
        }

        /// Next value in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }
}

pub use rand_free::SmallLcg;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic_and_valid() {
        let a = random_graph(8, 0.4, 7);
        let b = random_graph(8, 0.4, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // Mandatory feasibility must hold by construction.
        a.access_levels().check_mandatory_feasible(1e-9).unwrap();
    }

    #[test]
    fn density_zero_means_no_agreements() {
        let g = random_graph(5, 0.0, 1);
        assert!(g.agreements().is_empty());
    }
}
