//! Shared helpers for the figure-regeneration binaries and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use covenant_agreements::AgreementGraph;

/// Builds a random-but-deterministic agreement graph with `n` principals,
/// edge probability `density`, and capacities in `[100, 1100)` — the
/// workload for LP/flow scaling benches.
pub fn random_graph(n: usize, density: f64, seed: u64) -> AgreementGraph {
    let mut rng = SmallLcg::new(seed);
    let mut g = AgreementGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| g.add_principal(format!("P{i}"), 100.0 + rng.next_f64() * 1000.0))
        .collect();
    for (x, &i) in ids.iter().enumerate() {
        // Budget of mandatory fraction to hand out.
        let mut budget: f64 = 0.9;
        for (y, &j) in ids.iter().enumerate() {
            if x == y || budget <= 0.02 {
                continue;
            }
            if rng.next_f64() < density {
                let lb = rng.next_f64() * budget.min(0.3);
                let ub = (lb + rng.next_f64() * 0.4).min(1.0);
                g.add_agreement(i, j, lb, ub).expect("within budget");
                budget -= lb;
            }
        }
    }
    g
}

/// A tiny self-contained LCG so the bench *library* stays free of external
/// dependencies (criterion and rand are dev-dependencies only).
mod rand_free {
    /// Deterministic 64-bit LCG.
    pub struct SmallLcg(u64);

    impl SmallLcg {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            SmallLcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
        }

        /// Next value in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }
}

pub use rand_free::SmallLcg;

mod perfjson {
    use std::fs;
    use std::io;
    use std::path::PathBuf;

    /// Repo-root path of the machine-readable perf log.
    pub fn bench_json_path() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_lp.json")
    }

    /// Writes or replaces one top-level section of `BENCH_lp.json`.
    ///
    /// The file is a JSON object with one section per line (`"name": {…},`),
    /// a format this emitter both writes and re-reads so the `lp` and
    /// `sched` benches can update their own sections independently.
    /// `body_json` must be a JSON value serialized on a single line.
    pub fn emit_bench_section(section: &str, body_json: &str) -> io::Result<()> {
        emit_section_at(&bench_json_path(), section, body_json)
    }

    pub(super) fn emit_section_at(
        path: &std::path::Path,
        section: &str,
        body_json: &str,
    ) -> io::Result<()> {
        assert!(!body_json.contains('\n'), "section body must be one line");
        let mut sections: Vec<(String, String)> = Vec::new();
        if let Ok(existing) = fs::read_to_string(path) {
            for line in existing.lines() {
                let line = line.trim().trim_end_matches(',');
                if let Some(rest) = line.strip_prefix('"') {
                    if let Some((name, body)) = rest.split_once("\": ") {
                        sections.push((name.to_string(), body.to_string()));
                    }
                }
            }
        }
        sections.retain(|(name, _)| name != section);
        sections.push((section.to_string(), body_json.to_string()));
        sections.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{\n");
        for (i, (name, body)) in sections.iter().enumerate() {
            let sep = if i + 1 < sections.len() { "," } else { "" };
            out.push_str(&format!("\"{name}\": {body}{sep}\n"));
        }
        out.push_str("}\n");
        fs::write(path, out)
    }
}

pub use perfjson::{bench_json_path, emit_bench_section};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic_and_valid() {
        let a = random_graph(8, 0.4, 7);
        let b = random_graph(8, 0.4, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // Mandatory feasibility must hold by construction.
        a.access_levels().check_mandatory_feasible(1e-9).unwrap();
    }

    #[test]
    fn density_zero_means_no_agreements() {
        let g = random_graph(5, 0.0, 1);
        assert!(g.agreements().is_empty());
    }

    #[test]
    fn bench_json_sections_merge_and_replace() {
        let path = std::env::temp_dir().join("covenant_bench_json_test.json");
        let _ = std::fs::remove_file(&path);
        crate::perfjson::emit_section_at(&path, "lp", r#"{"a": 1}"#).unwrap();
        crate::perfjson::emit_section_at(&path, "sched", r#"{"b": 2}"#).unwrap();
        crate::perfjson::emit_section_at(&path, "lp", r#"{"a": 3}"#).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\n\"lp\": {\"a\": 3},\n\"sched\": {\"b\": 2}\n}\n");
        let _ = std::fs::remove_file(&path);
    }
}
