//! Shared helpers for the figure-regeneration binaries and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use covenant_agreements::AgreementGraph;

/// Builds a random-but-deterministic agreement graph with `n` principals,
/// edge probability `density`, and capacities in `[100, 1100)` — the
/// workload for LP/flow scaling benches.
pub fn random_graph(n: usize, density: f64, seed: u64) -> AgreementGraph {
    let mut rng = SmallLcg::new(seed);
    let mut g = AgreementGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| g.add_principal(format!("P{i}"), 100.0 + rng.next_f64() * 1000.0))
        .collect();
    for (x, &i) in ids.iter().enumerate() {
        // Budget of mandatory fraction to hand out.
        let mut budget: f64 = 0.9;
        for (y, &j) in ids.iter().enumerate() {
            if x == y || budget <= 0.02 {
                continue;
            }
            if rng.next_f64() < density {
                let lb = rng.next_f64() * budget.min(0.3);
                let ub = (lb + rng.next_f64() * 0.4).min(1.0);
                g.add_agreement(i, j, lb, ub).expect("within budget");
                budget -= lb;
            }
        }
    }
    g
}

/// Builds a deterministic two-tier agreement community for large-`n`
/// LP/scheduler benches: the first ⌈n/2⌉ principals are capacity-holding
/// providers, the rest are consumers holding agreements with up to three
/// providers each. Every simple agreement path has length one, so the
/// exact transitive-flow closure stays linear in the edge count —
/// [`random_graph`]'s free-form topology makes path enumeration
/// intractable past a few dozen principals, while the window LP it feeds
/// keeps the same shape (n² + 1 variables, agreement-sparsified columns).
pub fn bipartite_graph(n: usize, seed: u64) -> AgreementGraph {
    let mut rng = SmallLcg::new(seed);
    let mut g = AgreementGraph::new();
    let providers = n.div_ceil(2).max(1);
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let cap = if i < providers { 100.0 + rng.next_f64() * 1000.0 } else { 0.0 };
            g.add_principal(format!("P{i}"), cap)
        })
        .collect();
    // Per-provider mandatory budget so the grants stay feasible.
    let mut budget = vec![0.9f64; providers];
    for (c, &cid) in ids.iter().enumerate().skip(providers) {
        let mut chosen = [usize::MAX; 3];
        for spread in 0..3usize {
            let p = (c + spread * 131 + (rng.next_f64() * providers as f64) as usize) % providers;
            if budget[p] <= 0.05 || chosen.contains(&p) {
                continue;
            }
            chosen[spread] = p;
            let lb = (0.02 + rng.next_f64() * 0.1).min(budget[p] - 0.02);
            let ub = (lb + rng.next_f64() * 0.3).min(1.0);
            g.add_agreement(ids[p], cid, lb, ub).expect("within budget");
            budget[p] -= lb;
        }
    }
    g
}

/// A tiny self-contained LCG so the bench *library* stays free of external
/// dependencies (criterion and rand are dev-dependencies only).
mod rand_free {
    /// Deterministic 64-bit LCG.
    pub struct SmallLcg(u64);

    impl SmallLcg {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            SmallLcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
        }

        /// Next value in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }
}

pub use rand_free::SmallLcg;

mod perfjson {
    use std::fs;
    use std::io;
    use std::path::PathBuf;

    /// Repo-root path of the machine-readable LP/scheduler perf log.
    pub fn bench_json_path() -> PathBuf {
        repo_root_file("BENCH_lp.json")
    }

    /// Repo-root path of the machine-readable simulation perf log.
    pub fn sim_bench_json_path() -> PathBuf {
        repo_root_file("BENCH_sim.json")
    }

    /// Repo-root path of the machine-readable link-model perf log.
    pub fn net_bench_json_path() -> PathBuf {
        repo_root_file("BENCH_net.json")
    }

    fn repo_root_file(name: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
    }

    /// Writes or replaces one top-level section of `BENCH_lp.json`.
    ///
    /// The file is a JSON object with one section per line (`"name": {…},`),
    /// a format this emitter both writes and re-reads so the `lp` and
    /// `sched` benches can update their own sections independently.
    /// `body_json` must be a JSON value serialized on a single line.
    pub fn emit_bench_section(section: &str, body_json: &str) -> io::Result<()> {
        emit_section_at(&bench_json_path(), section, body_json)
    }

    /// Writes or replaces one top-level section of `BENCH_sim.json` (same
    /// one-section-per-line format as [`emit_bench_section`]).
    pub fn emit_sim_bench_section(section: &str, body_json: &str) -> io::Result<()> {
        emit_section_at(&sim_bench_json_path(), section, body_json)
    }

    /// Writes or replaces one top-level section of `BENCH_net.json` (same
    /// one-section-per-line format as [`emit_bench_section`]).
    pub fn emit_net_bench_section(section: &str, body_json: &str) -> io::Result<()> {
        emit_section_at(&net_bench_json_path(), section, body_json)
    }

    pub(super) fn emit_section_at(
        path: &std::path::Path,
        section: &str,
        body_json: &str,
    ) -> io::Result<()> {
        assert!(!body_json.contains('\n'), "section body must be one line");
        let mut sections: Vec<(String, String)> = Vec::new();
        if let Ok(existing) = fs::read_to_string(path) {
            for line in existing.lines() {
                let line = line.trim().trim_end_matches(',');
                if let Some(rest) = line.strip_prefix('"') {
                    if let Some((name, body)) = rest.split_once("\": ") {
                        sections.push((name.to_string(), body.to_string()));
                    }
                }
            }
        }
        sections.retain(|(name, _)| name != section);
        sections.push((section.to_string(), body_json.to_string()));
        sections.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{\n");
        for (i, (name, body)) in sections.iter().enumerate() {
            let sep = if i + 1 < sections.len() { "," } else { "" };
            out.push_str(&format!("\"{name}\": {body}{sep}\n"));
        }
        out.push_str("}\n");
        fs::write(path, out)
    }
}

pub use perfjson::{
    bench_json_path, emit_bench_section, emit_net_bench_section, emit_sim_bench_section,
    net_bench_json_path, sim_bench_json_path,
};

mod sweep {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Deterministic seed for sweep point `index` under base seed `base`
    /// (splitmix64 finalizer). Depends only on the inputs — never on which
    /// worker thread runs the point — so parallel sweeps reproduce serial
    /// ones exactly.
    pub fn point_seed(base: u64, index: usize) -> u64 {
        let mut z = base
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Worker-thread count for a sweep of `points` points: the
    /// `COVENANT_SWEEP_THREADS` environment variable if set (≥ 1), else the
    /// machine's available parallelism, never more than `points`.
    pub fn sweep_threads(points: usize) -> usize {
        let requested = std::env::var("COVENANT_SWEEP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            });
        requested.min(points.max(1))
    }

    /// Runs `f(index, &point)` for every point, fanning the points across
    /// [`sweep_threads`] scoped worker threads, and returns the results in
    /// input order. Points are claimed from a shared counter (work
    /// stealing), so uneven point costs still keep all workers busy.
    ///
    /// Determinism contract: `f` must derive any randomness from its
    /// arguments (e.g. [`point_seed`]) — then the result vector is
    /// identical for any worker count, including the serial fallback.
    pub fn run_sweep<T, R, F>(points: Vec<T>, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = sweep_threads(points.len());
        run_sweep_with(points, workers, f)
    }

    /// [`run_sweep`] with an explicit worker count.
    pub fn run_sweep_with<T, R, F>(points: Vec<T>, workers: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = points.len();
        if workers <= 1 || n <= 1 {
            return points.iter().enumerate().map(|(i, p)| f(i, p)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let points = &points;
        let slots_ref = &slots;
        let f = &f;
        let next = &next;
        std::thread::scope(|s| {
            for _ in 0..workers.min(n) {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i, &points[i]);
                    *slots_ref[i].lock().expect("no poisoned sweep slot") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("no poisoned sweep slot")
                    .expect("every sweep point produces a result")
            })
            .collect()
    }
}

pub use sweep::{point_seed, run_sweep, run_sweep_with, sweep_threads};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic_and_valid() {
        let a = random_graph(8, 0.4, 7);
        let b = random_graph(8, 0.4, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // Mandatory feasibility must hold by construction.
        a.access_levels().check_mandatory_feasible(1e-9).unwrap();
    }

    #[test]
    fn density_zero_means_no_agreements() {
        let g = random_graph(5, 0.0, 1);
        assert!(g.agreements().is_empty());
    }

    #[test]
    fn bipartite_graph_is_deterministic_valid_and_shallow() {
        let a = bipartite_graph(64, 42);
        let b = bipartite_graph(64, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        let levels = a.access_levels();
        levels.check_mandatory_feasible(1e-9).unwrap();
        // Only the provider tier grants, so every agreement path has
        // length one — the property that keeps the exact path closure
        // (and thus large-n workload construction) linear.
        for ag in a.agreements() {
            assert!(ag.issuer.0 < 32, "consumer issued an agreement");
            assert!(ag.holder.0 >= 32, "provider holds an agreement");
        }
        assert!(!a.agreements().is_empty());
    }

    #[test]
    fn sweep_returns_results_in_input_order() {
        let points: Vec<u64> = (0..37).collect();
        let serial = run_sweep_with(points.clone(), 1, |i, p| (i as u64) * 1000 + p * p);
        let parallel = run_sweep_with(points, 4, |i, p| (i as u64) * 1000 + p * p);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3], 3009);
    }

    #[test]
    fn sweep_seeds_are_deterministic_and_distinct() {
        let seeds: Vec<u64> = (0..64).map(|i| point_seed(42, i)).collect();
        assert_eq!(seeds, (0..64).map(|i| point_seed(42, i)).collect::<Vec<_>>());
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "per-point seeds must not collide");
        assert_ne!(point_seed(42, 0), point_seed(43, 0), "base seed must matter");
    }

    #[test]
    fn sweep_parallel_matches_serial_with_seeded_points() {
        // The contract users rely on: deriving randomness from point_seed
        // makes the sweep result independent of the worker count.
        let run = |workers| {
            run_sweep_with((0..16).collect::<Vec<usize>>(), workers, |i, _| {
                let mut lcg = SmallLcg::new(point_seed(7, i));
                (0..100).map(|_| lcg.next_f64()).sum::<f64>()
            })
        };
        assert_eq!(run(1), run(5));
    }

    #[test]
    fn sweep_handles_empty_and_single_point() {
        let empty: Vec<i32> = run_sweep_with(Vec::<i32>::new(), 4, |_, p| *p);
        assert!(empty.is_empty());
        assert_eq!(run_sweep_with(vec![9], 4, |_, p| p + 1), vec![10]);
    }

    #[test]
    fn bench_json_sections_merge_and_replace() {
        let path = std::env::temp_dir().join("covenant_bench_json_test.json");
        let _ = std::fs::remove_file(&path);
        crate::perfjson::emit_section_at(&path, "lp", r#"{"a": 1}"#).unwrap();
        crate::perfjson::emit_section_at(&path, "sched", r#"{"b": 2}"#).unwrap();
        crate::perfjson::emit_section_at(&path, "lp", r#"{"a": 3}"#).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\n\"lp\": {\"a\": 3},\n\"sched\": {\"b\": 2}\n}\n");
        let _ = std::fs::remove_file(&path);
    }
}
