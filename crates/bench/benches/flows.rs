//! Agreement-flow computation cost (pre-computation ablation).
//!
//! Full simple-path transitive closure vs the paper's bounded-length
//! `MI^(m)` truncation, across graph sizes and densities. The bounded form
//! is what makes large dense communities tractable.

use covenant_bench::random_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn flow_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_closure_full");
    for n in [4usize, 8, 12, 16] {
        // Sparse graphs (out-degree ~2.5): the exact closure is
        // exponential in density — that is what flow_bounded measures.
        let g = random_graph(n, (2.5 / n as f64).min(0.3), 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(g.flows()))
        });
    }
    group.finish();
}

fn flow_bounded(c: &mut Criterion) {
    // Denser graph where the full closure would be prohibitive: the
    // paper's bounded-length MI^(m) truncation keeps it tractable.
    let g = random_graph(16, 0.25, 9);
    let mut group = c.benchmark_group("flow_closure_bounded_n16");
    for m in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| black_box(g.flows_bounded(m)))
        });
    }
    group.finish();
}

fn access_levels_from_flows(c: &mut Criterion) {
    // The per-capacity-change recomputation: reuse precomputed MT/OT.
    let g = random_graph(12, 0.25, 9);
    let flows = g.flows_bounded(4);
    let v = g.capacities();
    c.bench_function("access_levels_recompute_n12", |b| {
        b.iter(|| {
            black_box(covenant_agreements::AccessLevels::from_flows_with_capacities(
                black_box(&flows),
                black_box(&v),
            ))
        })
    });
}

criterion_group!(benches, flow_closure, flow_bounded, access_levels_from_flows);
criterion_main!(benches);
