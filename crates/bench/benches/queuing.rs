//! End-to-end simulator throughput per queuing mode (E9 companion).
//!
//! Measures wall time to simulate 10 s of a contended deployment in each
//! queuing mode — explicit queues, credit+retry (L7), credit+park (L4) —
//! so the modes' engine costs can be compared alongside their enforcement
//! behaviour.

use covenant_agreements::AgreementGraph;
use covenant_sim::{QueueMode, SimConfig, Simulation};
use covenant_workload::{ClientMachine, PhasedLoad};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sim_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_10s_contended");
    group.sample_size(10);
    let modes = [
        ("explicit", QueueMode::Explicit),
        ("credit_retry", QueueMode::CreditRetry { retry_delay: 0.05 }),
        ("credit_park", QueueMode::CreditPark),
    ];
    for (name, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, mode| {
            b.iter(|| {
                let mut g = AgreementGraph::new();
                let s = g.add_principal("S", 320.0);
                let a = g.add_principal("A", 0.0);
                let bb = g.add_principal("B", 0.0);
                g.add_agreement(s, a, 0.2, 1.0).unwrap();
                g.add_agreement(s, bb, 0.8, 1.0).unwrap();
                let cfg = SimConfig::new(g, 10.0)
                    .with_mode(mode.clone())
                    .closed_loop_client(
                        ClientMachine::uniform(0, a, PhasedLoad::constant(200.0, 10.0)),
                        0,
                        64,
                    )
                    .closed_loop_client(
                        ClientMachine::uniform(1, bb, PhasedLoad::constant(200.0, 10.0)),
                        0,
                        64,
                    );
                black_box(Simulation::new(cfg).run())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sim_modes);
criterion_main!(benches);
