//! Redirector overhead (E10): per-request admission cost and per-window
//! planning cost.
//!
//! The paper reports <15% redirector CPU at full load; here the admit path
//! must be tens of nanoseconds and the window roll (one LP solve) tens of
//! microseconds, making 100 ms windows essentially free. The plan benches
//! disable the plan cache so they time actual solving; the `_cached`
//! variant shows the steady-state replay cost. The run appends its means
//! to the repo-root `BENCH_lp.json`.

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_bench::emit_bench_section;
use covenant_enforce::CreditGate;
use covenant_sched::{GlobalView, Plan, Request, SchedulerConfig, WindowScheduler};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;

fn provider_system() -> AgreementGraph {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 320.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.2, 1.0).unwrap();
    g.add_agreement(s, b, 0.8, 1.0).unwrap();
    g
}

fn uncached(cfg: SchedulerConfig) -> SchedulerConfig {
    SchedulerConfig { plan_cache: false, ..cfg }
}

fn admit_path(c: &mut Criterion) {
    let mut gate = CreditGate::for_principals(3);
    gate.roll_window(&Plan {
        assignments: vec![vec![0.0; 3], vec![1e12, 0.0, 0.0], vec![1e12, 0.0, 0.0]],
        theta: None,
        income: None,
    });
    let mut id = 0u64;
    c.bench_function("credit_gate_admit", |b| {
        b.iter(|| {
            id += 1;
            black_box(gate.admit(&Request::unit(id, PrincipalId(1), 0.0)))
        })
    });
}

fn window_roll(c: &mut Criterion) {
    let g = provider_system();
    let view = GlobalView::Queues(vec![0.0, 40.0, 25.0]);
    let local = vec![0.0, 20.0, 10.0];

    let mut ws =
        WindowScheduler::new(&g.access_levels(), uncached(SchedulerConfig::community_default()));
    c.bench_function("window_plan_community_n3", |b| {
        b.iter(|| black_box(ws.plan_window(black_box(&view), black_box(&local))))
    });

    let mut ws =
        WindowScheduler::new(&g.access_levels(), SchedulerConfig::community_default());
    c.bench_function("window_plan_community_n3_cached", |b| {
        b.iter(|| black_box(ws.plan_window(black_box(&view), black_box(&local))))
    });

    let mut ws = WindowScheduler::new(
        &g.access_levels(),
        uncached(SchedulerConfig::provider(vec![0.0, 2.0, 1.0])),
    );
    c.bench_function("window_plan_provider_n3", |b| {
        b.iter(|| black_box(ws.plan_window(black_box(&view), black_box(&local))))
    });
}

fn conservative_fallback(c: &mut Criterion) {
    let g = provider_system();
    let mut ws =
        WindowScheduler::new(&g.access_levels(), uncached(SchedulerConfig::community_default()));
    let local = vec![0.0, 20.0, 10.0];
    c.bench_function("window_plan_conservative_n3", |b| {
        b.iter(|| black_box(ws.plan_window(black_box(&GlobalView::Unknown), black_box(&local))))
    });
}

criterion_group!(benches, admit_path, window_roll, conservative_fallback);

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);

    let ids = [
        "credit_gate_admit",
        "window_plan_community_n3",
        "window_plan_community_n3_cached",
        "window_plan_provider_n3",
        "window_plan_conservative_n3",
    ];
    let mut body = String::from("{");
    for (i, id) in ids.iter().enumerate() {
        let mean = c
            .results()
            .iter()
            .find(|m| &m.id == id)
            .map(|m| m.mean_ns)
            .unwrap_or(f64::NAN);
        let sep = if i + 1 < ids.len() { ", " } else { "" };
        body.push_str(&format!("\"{id}_ns\": {mean:.1}{sep}"));
    }
    body.push('}');
    emit_bench_section("sched", &body).expect("write BENCH_lp.json");
    println!("BENCH_lp.json \"sched\" section updated");
}
