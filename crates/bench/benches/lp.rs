//! LP-solver cost vs number of principals (E10 ablation).
//!
//! The paper argues per-window LP solves are cheap because "the complexity
//! of this strategy only depends on the number of principals". This bench
//! quantifies that: community-model solve time for n ∈ {2..32} principals
//! (n² + 1 variables), the optimized flat-tableau/Dantzig solver against
//! the retained naive reference on the identical window LPs, and raw
//! simplex throughput on a fixed small model.
//!
//! Past n ≈ 32 the dense tableau stops being an option (its working set is
//! quadratic in `n² + 1`), so the large-n rows compare the sparse revised
//! engine against itself: a cold all-slack dual-simplex solve vs the
//! steady-state warm re-solve over the previous window's basis, with pivot
//! counts, for n ∈ {64 … 1024}.
//!
//! The run ends by writing its means — plus the steady-state plan-cache hit
//! rate — into the repo-root `BENCH_lp.json` so the perf trajectory is
//! tracked across PRs.

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_bench::{bipartite_graph, emit_bench_section, random_graph};
use covenant_lp::{Problem, Relation, SimplexWorkspace, WarmBasis, WarmOutcome};
use covenant_sched::{
    CommunityScheduler, GlobalView, PreparedCommunity, SchedulerConfig, WindowScheduler,
};
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

/// Principal counts of the dense-vs-fast comparison in `BENCH_lp.json`.
const JSON_SIZES: [usize; 4] = [4, 8, 16, 32];
/// Principal counts of the cold-vs-warm revised-engine comparison.
const WARM_SIZES: [usize; 5] = [64, 128, 256, 512, 1024];

fn scaling_workload(n: usize) -> (AgreementGraph, Vec<f64>) {
    // Keep out-degree ~3: agreement graphs are sparse in practice,
    // and the exact simple-path closure is exponential in density.
    let g = random_graph(n, (3.0 / n as f64).min(0.3), 42);
    let queues: Vec<f64> = (0..n).map(|i| 10.0 + (i as f64) * 3.0).collect();
    (g, queues)
}

fn community_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("community_lp_solve");
    for n in [2usize, 4, 8, 16, 32] {
        let (g, queues) = scaling_workload(n);
        let levels = g.access_levels().scaled(0.1);
        let sched = CommunityScheduler::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let plan = sched.plan(black_box(&levels), black_box(&queues));
                black_box(plan.admitted(PrincipalId(0)))
            })
        });
    }
    group.finish();
}

/// The tentpole comparison: prepared skeleton + reused workspace (fast
/// path) vs the retained pre-optimization solver on the same window LP.
fn community_lp_fast_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("community_lp_fast");
    for n in JSON_SIZES {
        let (g, queues) = scaling_workload(n);
        let levels = g.access_levels().scaled(0.1);
        let mut prepared = PreparedCommunity::new(&levels, None);
        let mut ws = SimplexWorkspace::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(prepared.plan_with(&mut ws, black_box(&queues))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("community_lp_reference");
    for n in JSON_SIZES {
        let (g, queues) = scaling_workload(n);
        let levels = g.access_levels().scaled(0.1);
        let mut prepared = PreparedCommunity::new(&levels, None);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let problem = prepared.window_problem(black_box(&queues));
                black_box(problem.solve_reference())
            })
        });
    }
    group.finish();
}

/// The window LP of size-`n` community workload at two nearby queue
/// vectors — the rhs drift one scheduling window produces. Uses the
/// two-tier provider/consumer topology: free-form `random_graph`
/// communities make the exact path closure (not the LP) the bottleneck
/// past n ≈ 32.
fn warm_window_problems(n: usize) -> (Problem, Problem) {
    let g = bipartite_graph(n, 42);
    let queues: Vec<f64> = (0..n).map(|i| 10.0 + (i as f64) * 3.0).collect();
    let levels = g.access_levels().scaled(0.1);
    let mut prepared = PreparedCommunity::new(&levels, None);
    let p1 = prepared.window_problem(&queues).clone();
    let drifted: Vec<f64> = queues.iter().map(|q| q * 1.04 + 0.5).collect();
    let p2 = prepared.window_problem(&drifted).clone();
    (p1, p2)
}

/// Large-n tentpole comparison: cold all-slack revised solve vs the warm
/// rhs-repair re-solve the steady state runs every window.
fn revised_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("revised_lp_cold");
    group.sample_size(10);
    for n in WARM_SIZES {
        let (p1, _) = warm_window_problems(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut warm = WarmBasis::new();
                assert_eq!(p1.solve_warm(&mut warm), WarmOutcome::Optimal);
                black_box(warm.objective_value())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("revised_lp_warm");
    group.sample_size(10);
    for n in WARM_SIZES {
        let (p1, p2) = warm_window_problems(n);
        let mut warm = WarmBasis::new();
        assert_eq!(p1.solve_warm(&mut warm), WarmOutcome::Optimal);
        let mut flip = false;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                // Alternate the two windows so every solve repairs a real
                // rhs change instead of re-pricing an unchanged optimum.
                flip = !flip;
                let p = if flip { &p2 } else { &p1 };
                assert_eq!(p.solve_warm(&mut warm), WarmOutcome::Optimal);
                black_box(warm.objective_value())
            })
        });
    }
    group.finish();
}

/// Pivot counts behind the cold/warm comparison: total pivots of one cold
/// solve, and mean pivots per warm window over a drifting-queue sequence.
fn pivot_profile(n: usize) -> (u64, f64) {
    let g = bipartite_graph(n, 42);
    let queues: Vec<f64> = (0..n).map(|i| 10.0 + (i as f64) * 3.0).collect();
    let levels = g.access_levels().scaled(0.1);
    let mut prepared = PreparedCommunity::new(&levels, None);
    let mut warm = WarmBasis::new();
    let p = prepared.window_problem(&queues).clone();
    assert_eq!(p.solve_warm(&mut warm), WarmOutcome::Optimal);
    let cold_pivots = warm.stats().pivots;
    let windows = 16u64;
    for w in 0..windows {
        let drifted: Vec<f64> = queues
            .iter()
            .enumerate()
            .map(|(i, q)| q * (1.0 + 0.03 * (((w as usize + i) % 7) as f64 - 3.0) / 3.0))
            .collect();
        let p = prepared.window_problem(&drifted).clone();
        assert_eq!(p.solve_warm(&mut warm), WarmOutcome::Optimal);
    }
    let warm_pivots = warm.stats().pivots - cold_pivots;
    (cold_pivots, warm_pivots as f64 / windows as f64)
}

fn simplex_small(c: &mut Criterion) {
    c.bench_function("simplex_5x8", |b| {
        b.iter(|| {
            let mut p = Problem::new(5);
            p.set_objective(vec![3.0, 2.0, 4.0, 1.0, 5.0]);
            for i in 0..8 {
                let coeffs: Vec<(usize, f64)> =
                    (0..5).map(|j| (j, ((i + j) % 3 + 1) as f64)).collect();
                p.add_constraint(coeffs, Relation::Le, 10.0 + i as f64);
            }
            black_box(p.solve())
        })
    });
}

/// Steady-state plan-cache hit rate: a window scheduler fed the same demand
/// vector for many consecutive windows, as happens in the flat phases of
/// Figures 6–10 once the EWMA estimator converges.
fn plan_cache_hit_rate() -> f64 {
    let (g, queues) = scaling_workload(16);
    let mut ws =
        WindowScheduler::new(&g.access_levels(), SchedulerConfig::community_default());
    let view = GlobalView::Queues(queues.clone());
    for _ in 0..256 {
        black_box(ws.plan_window(&view, &queues));
    }
    let (hits, misses) = ws.cache_stats();
    hits as f64 / (hits + misses).max(1) as f64
}

fn mean_ns(c: &Criterion, id: &str) -> f64 {
    c.results()
        .iter()
        .find(|m| m.id == id)
        .map(|m| m.mean_ns)
        .unwrap_or(f64::NAN)
}

criterion_group!(
    benches,
    community_lp_scaling,
    community_lp_fast_vs_reference,
    revised_cold_vs_warm,
    simplex_small
);

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);

    let mut body = String::from("{\"solve_ns\": {");
    for (i, n) in JSON_SIZES.iter().enumerate() {
        let fast = mean_ns(&c, &format!("community_lp_fast/{n}"));
        let reference = mean_ns(&c, &format!("community_lp_reference/{n}"));
        let sep = if i + 1 < JSON_SIZES.len() { ", " } else { "" };
        body.push_str(&format!(
            "\"{n}\": {{\"fast\": {fast:.1}, \"reference\": {reference:.1}, \
             \"speedup\": {:.2}}}{sep}",
            reference / fast
        ));
    }
    body.push_str("}, \"warm_solve_ns\": {");
    for (i, n) in WARM_SIZES.iter().enumerate() {
        let cold = mean_ns(&c, &format!("revised_lp_cold/{n}"));
        let warm = mean_ns(&c, &format!("revised_lp_warm/{n}"));
        let (cold_pivots, warm_pivots) = pivot_profile(*n);
        let sep = if i + 1 < WARM_SIZES.len() { ", " } else { "" };
        body.push_str(&format!(
            "\"{n}\": {{\"cold\": {cold:.1}, \"warm\": {warm:.1}, \
             \"speedup\": {:.2}, \"cold_pivots\": {cold_pivots}, \
             \"warm_pivots_per_window\": {warm_pivots:.1}}}{sep}",
            cold / warm
        ));
    }
    let hit_rate = plan_cache_hit_rate();
    body.push_str(&format!("}}, \"plan_cache_hit_rate\": {hit_rate:.4}}}"));
    emit_bench_section("lp", &body).expect("write BENCH_lp.json");
    println!("BENCH_lp.json \"lp\" section updated (cache hit rate {hit_rate:.4})");
}
