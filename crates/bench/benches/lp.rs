//! LP-solver cost vs number of principals (E10 ablation).
//!
//! The paper argues per-window LP solves are cheap because "the complexity
//! of this strategy only depends on the number of principals". This bench
//! quantifies that: community-model solve time for n ∈ {2..32} principals
//! (n² + 1 variables), plus raw simplex throughput on a fixed small model.

use covenant_agreements::PrincipalId;
use covenant_bench::random_graph;
use covenant_lp::{Problem, Relation};
use covenant_sched::CommunityScheduler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn community_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("community_lp_solve");
    for n in [2usize, 4, 8, 16, 32] {
        // Keep out-degree ~3: agreement graphs are sparse in practice,
        // and the exact simple-path closure is exponential in density.
        let g = random_graph(n, (3.0 / n as f64).min(0.3), 42);
        let levels = g.access_levels().scaled(0.1);
        let queues: Vec<f64> = (0..n).map(|i| 10.0 + (i as f64) * 3.0).collect();
        let sched = CommunityScheduler::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let plan = sched.plan(black_box(&levels), black_box(&queues));
                black_box(plan.admitted(PrincipalId(0)))
            })
        });
    }
    group.finish();
}

fn simplex_small(c: &mut Criterion) {
    c.bench_function("simplex_5x8", |b| {
        b.iter(|| {
            let mut p = Problem::new(5);
            p.set_objective(vec![3.0, 2.0, 4.0, 1.0, 5.0]);
            for i in 0..8 {
                let coeffs: Vec<(usize, f64)> =
                    (0..5).map(|j| (j, ((i + j) % 3 + 1) as f64)).collect();
                p.add_constraint(coeffs, Relation::Le, 10.0 + i as f64);
            }
            black_box(p.solve())
        })
    });
}

criterion_group!(benches, community_lp_scaling, simplex_small);
criterion_main!(benches);
