//! LP-solver cost vs number of principals (E10 ablation).
//!
//! The paper argues per-window LP solves are cheap because "the complexity
//! of this strategy only depends on the number of principals". This bench
//! quantifies that: community-model solve time for n ∈ {2..32} principals
//! (n² + 1 variables), the optimized flat-tableau/Dantzig solver against
//! the retained naive reference on the identical window LPs, and raw
//! simplex throughput on a fixed small model.
//!
//! The run ends by writing its means — plus the steady-state plan-cache hit
//! rate — into the repo-root `BENCH_lp.json` so the perf trajectory is
//! tracked across PRs.

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_bench::{emit_bench_section, random_graph};
use covenant_lp::{Problem, Relation, SimplexWorkspace};
use covenant_sched::{
    CommunityScheduler, GlobalView, PreparedCommunity, SchedulerConfig, WindowScheduler,
};
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

/// Principal counts reported in `BENCH_lp.json`.
const JSON_SIZES: [usize; 4] = [4, 8, 16, 32];

fn scaling_workload(n: usize) -> (AgreementGraph, Vec<f64>) {
    // Keep out-degree ~3: agreement graphs are sparse in practice,
    // and the exact simple-path closure is exponential in density.
    let g = random_graph(n, (3.0 / n as f64).min(0.3), 42);
    let queues: Vec<f64> = (0..n).map(|i| 10.0 + (i as f64) * 3.0).collect();
    (g, queues)
}

fn community_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("community_lp_solve");
    for n in [2usize, 4, 8, 16, 32] {
        let (g, queues) = scaling_workload(n);
        let levels = g.access_levels().scaled(0.1);
        let sched = CommunityScheduler::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let plan = sched.plan(black_box(&levels), black_box(&queues));
                black_box(plan.admitted(PrincipalId(0)))
            })
        });
    }
    group.finish();
}

/// The tentpole comparison: prepared skeleton + reused workspace (fast
/// path) vs the retained pre-optimization solver on the same window LP.
fn community_lp_fast_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("community_lp_fast");
    for n in JSON_SIZES {
        let (g, queues) = scaling_workload(n);
        let levels = g.access_levels().scaled(0.1);
        let mut prepared = PreparedCommunity::new(&levels, None);
        let mut ws = SimplexWorkspace::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(prepared.plan_with(&mut ws, black_box(&queues))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("community_lp_reference");
    for n in JSON_SIZES {
        let (g, queues) = scaling_workload(n);
        let levels = g.access_levels().scaled(0.1);
        let mut prepared = PreparedCommunity::new(&levels, None);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let problem = prepared.window_problem(black_box(&queues));
                black_box(problem.solve_reference())
            })
        });
    }
    group.finish();
}

fn simplex_small(c: &mut Criterion) {
    c.bench_function("simplex_5x8", |b| {
        b.iter(|| {
            let mut p = Problem::new(5);
            p.set_objective(vec![3.0, 2.0, 4.0, 1.0, 5.0]);
            for i in 0..8 {
                let coeffs: Vec<(usize, f64)> =
                    (0..5).map(|j| (j, ((i + j) % 3 + 1) as f64)).collect();
                p.add_constraint(coeffs, Relation::Le, 10.0 + i as f64);
            }
            black_box(p.solve())
        })
    });
}

/// Steady-state plan-cache hit rate: a window scheduler fed the same demand
/// vector for many consecutive windows, as happens in the flat phases of
/// Figures 6–10 once the EWMA estimator converges.
fn plan_cache_hit_rate() -> f64 {
    let (g, queues) = scaling_workload(16);
    let mut ws =
        WindowScheduler::new(&g.access_levels(), SchedulerConfig::community_default());
    let view = GlobalView::Queues(queues.clone());
    for _ in 0..256 {
        black_box(ws.plan_window(&view, &queues));
    }
    let (hits, misses) = ws.cache_stats();
    hits as f64 / (hits + misses).max(1) as f64
}

fn mean_ns(c: &Criterion, id: &str) -> f64 {
    c.results()
        .iter()
        .find(|m| m.id == id)
        .map(|m| m.mean_ns)
        .unwrap_or(f64::NAN)
}

criterion_group!(benches, community_lp_scaling, community_lp_fast_vs_reference, simplex_small);

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);

    let mut body = String::from("{\"solve_ns\": {");
    for (i, n) in JSON_SIZES.iter().enumerate() {
        let fast = mean_ns(&c, &format!("community_lp_fast/{n}"));
        let reference = mean_ns(&c, &format!("community_lp_reference/{n}"));
        let sep = if i + 1 < JSON_SIZES.len() { ", " } else { "" };
        body.push_str(&format!(
            "\"{n}\": {{\"fast\": {fast:.1}, \"reference\": {reference:.1}, \
             \"speedup\": {:.2}}}{sep}",
            reference / fast
        ));
    }
    let hit_rate = plan_cache_hit_rate();
    body.push_str(&format!("}}, \"plan_cache_hit_rate\": {hit_rate:.4}}}"));
    emit_bench_section("lp", &body).expect("write BENCH_lp.json");
    println!("BENCH_lp.json \"lp\" section updated (cache hit rate {hit_rate:.4})");
}
