//! Combining-tree aggregation cost (E8 companion).
//!
//! One up/down round over n redirectors, each contributing a
//! 16-principal demand vector, across tree shapes.

use covenant_tree::{QueueStats, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn aggregate_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_aggregate_round");
    for n in [4usize, 16, 64, 256] {
        let t = Topology::balanced(n, 2, 0.01);
        let locals: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..16).map(|k| (i * k) as f64).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("balanced", n), &n, |b, _| {
            b.iter(|| black_box(t.aggregate(black_box(&locals))))
        });
        let star = Topology::star(n, 0.01);
        group.bench_with_input(BenchmarkId::new("star", n), &n, |b, _| {
            b.iter(|| black_box(star.aggregate(black_box(&locals))))
        });
    }
    group.finish();
}

fn stats_merge(c: &mut Criterion) {
    let chunks: Vec<QueueStats> = (0..256)
        .map(|i| QueueStats::of_slice(&[i as f64, (i * 2) as f64]))
        .collect();
    c.bench_function("queue_stats_merge_256", |b| {
        b.iter(|| {
            black_box(
                chunks
                    .iter()
                    .fold(QueueStats::empty(), |acc, s| acc.merge(s)),
            )
        })
    });
}

criterion_group!(benches, aggregate_round, stats_merge);
criterion_main!(benches);
