//! Simulation-engine throughput: streaming vs the retained reference path.
//!
//! The tentpole measurement behind `BENCH_sim.json`: a ~1M-request
//! underloaded run executed twice — once on [`Simulation::run`] (lazy
//! arrival streaming, slab metadata, bounded heap) and once on
//! [`Simulation::run_reference`] (the pre-optimization engine: full trace
//! materialized and heap-scheduled up front, `HashMap` metadata). Both
//! must report identical behavior ([`SimReport::outcome_eq`]); the wall
//! clock and peak-heap numbers quantify the win.
//!
//! A second section records streaming-engine event throughput per queuing
//! mode on a contended two-redirector scenario.
//!
//! Multi-second whole-run measurements don't fit criterion's
//! sample-iteration model, so this bench times runs directly with
//! `Instant` (same `harness = false` setup as the other benches).

use covenant_agreements::{AgreementGraph, PrincipalId};
use covenant_bench::emit_sim_bench_section;
use covenant_sim::{QueueMode, SimConfig, SimReport, Simulation};
use covenant_tree::Topology;
use covenant_workload::{ClientMachine, PhasedLoad};

/// ~1M original arrivals: 4 uniform clients × 500 req/s × 500 s against a
/// 3000 unit/s server pool (underloaded, so the event count is dominated
/// by arrivals + completions, and in-flight stays small — the regime where
/// the heap/metadata structures are the cost).
fn million_request_config() -> SimConfig {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 3000.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.2, 1.0).unwrap();
    g.add_agreement(s, b, 0.8, 1.0).unwrap();
    let dur = 500.0;
    let mut cfg = SimConfig::new(g, dur);
    for (i, p) in [(0, a), (1, a), (2, b), (3, b)] {
        cfg = cfg.client(ClientMachine::uniform(i, p, PhasedLoad::constant(500.0, dur)), 0);
    }
    cfg
}

/// Figure-6-style contention: two redirectors, offered load ~3× capacity,
/// so deferrals/retries and queue churn dominate.
fn contended_config(mode: QueueMode) -> SimConfig {
    let mut g = AgreementGraph::new();
    let s = g.add_principal("S", 100.0);
    let a = g.add_principal("A", 0.0);
    let b = g.add_principal("B", 0.0);
    g.add_agreement(s, a, 0.2, 1.0).unwrap();
    g.add_agreement(s, b, 0.8, 1.0).unwrap();
    SimConfig::new(g, 30.0)
        .with_mode(mode)
        .with_tree(Topology::star(2, 0.0), 0.0)
        .closed_loop_client(ClientMachine::uniform(0, a, PhasedLoad::constant(150.0, 30.0)), 0, 64)
        .closed_loop_client(ClientMachine::uniform(1, b, PhasedLoad::constant(150.0, 30.0)), 1, 64)
}

fn fmt_streaming(stream: &SimReport, reference: &SimReport) -> String {
    format!(
        "{{\"offered_requests\": {}, \"events_processed\": {}, \
         \"stream_wall_s\": {:.3}, \"reference_wall_s\": {:.3}, \"speedup\": {:.2}, \
         \"stream_events_per_sec\": {:.0}, \"reference_events_per_sec\": {:.0}, \
         \"stream_peak_event_queue\": {}, \"reference_peak_event_queue\": {}}}",
        stream.offered.iter().sum::<u64>(),
        stream.events_processed,
        stream.wall_secs,
        reference.wall_secs,
        reference.wall_secs / stream.wall_secs,
        stream.events_per_sec(),
        reference.events_per_sec(),
        stream.peak_event_queue,
        reference.peak_event_queue,
    )
}

fn main() {
    println!("running 1M-request streaming engine...");
    let stream = Simulation::new(million_request_config()).run();
    println!(
        "  streamed: {:.2} s wall, {:.0} events/s, peak queue {}",
        stream.wall_secs,
        stream.events_per_sec(),
        stream.peak_event_queue
    );
    println!("running 1M-request reference engine...");
    let reference = Simulation::new(million_request_config()).run_reference();
    println!(
        "  reference: {:.2} s wall, {:.0} events/s, peak queue {}",
        reference.wall_secs,
        reference.events_per_sec(),
        reference.peak_event_queue
    );
    assert!(
        stream.outcome_eq(&reference),
        "streaming and reference engines diverged at the 1M-request scale"
    );
    println!(
        "  speedup {:.2}x, heap shrink {:.0}x, A served {:.0} req/s",
        reference.wall_secs / stream.wall_secs,
        reference.peak_event_queue as f64 / stream.peak_event_queue as f64,
        stream.rates.mean_rate_secs(PrincipalId(1), 50.0, 450.0)
    );
    emit_sim_bench_section("streaming", &fmt_streaming(&stream, &reference))
        .expect("write BENCH_sim.json");

    let mut modes = String::from("{");
    for (i, (name, mode)) in [
        ("explicit", QueueMode::Explicit),
        ("credit_retry", QueueMode::CreditRetry { retry_delay: 0.05 }),
        ("credit_park", QueueMode::CreditPark),
    ]
    .into_iter()
    .enumerate()
    {
        let r = Simulation::new(contended_config(mode)).run();
        println!(
            "contended {name}: {:.0} events/s ({} events, peak queue {})",
            r.events_per_sec(),
            r.events_processed,
            r.peak_event_queue
        );
        let sep = if i < 2 { ", " } else { "" };
        modes.push_str(&format!(
            "\"{name}\": {{\"events_per_sec\": {:.0}, \"events_processed\": {}, \
             \"peak_event_queue\": {}}}{sep}",
            r.events_per_sec(),
            r.events_processed,
            r.peak_event_queue
        ));
    }
    modes.push('}');
    emit_sim_bench_section("contended_modes", &modes).expect("write BENCH_sim.json");
    println!("BENCH_sim.json updated");
}
