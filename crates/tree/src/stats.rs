//! Richer queue aggregates combinable in one tree round.
//!
//! §3.2: "In addition to total queue length, other aggregate queue metrics
//! such as the maximum, minimum, average queue length, and variation in
//! queue lengths, can also be collected in the same fashion." All of these
//! are decomposable: each is a fold of per-node summaries that interior
//! nodes can merge associatively on the way up.

use serde::{Deserialize, Serialize};

/// Combinable summary of a set of queue-length observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Number of observations folded in.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Sum of squares (for variance).
    pub sum_sq: f64,
    /// Maximum observation.
    pub max: f64,
    /// Minimum observation.
    pub min: f64,
}

impl QueueStats {
    /// The identity element for [`QueueStats::merge`].
    pub fn empty() -> Self {
        QueueStats {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
        }
    }

    /// A summary of one observation.
    pub fn of(value: f64) -> Self {
        QueueStats { count: 1, sum: value, sum_sq: value * value, max: value, min: value }
    }

    /// Builds a summary of a slice.
    pub fn of_slice(values: &[f64]) -> Self {
        values.iter().fold(Self::empty(), |acc, &v| acc.merge(&Self::of(v)))
    }

    /// Associatively merges two summaries (what an interior tree node does
    /// with a child's message).
    pub fn merge(&self, other: &QueueStats) -> QueueStats {
        QueueStats {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            sum_sq: self.sum_sq + other.sum_sq,
            max: self.max.max(other.max),
            min: self.min.min(other.min),
        }
    }

    /// Mean queue length, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Population variance, `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        self.mean().map(|m| (self.sum_sq / self.count as f64 - m * m).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_identity() {
        let s = QueueStats::of(5.0);
        let merged = QueueStats::empty().merge(&s);
        assert_eq!(merged, s);
        assert_eq!(s.merge(&QueueStats::empty()), s);
    }

    #[test]
    fn of_slice_matches_manual() {
        let s = QueueStats::of_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.mean(), Some(2.5));
        assert!((s.variance().unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = QueueStats::of_slice(&[1.0, 9.0]);
        let b = QueueStats::of_slice(&[4.0]);
        let c = QueueStats::of_slice(&[2.0, 7.0, 0.5]);
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left, right);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn tree_merge_equals_flat_summary() {
        // Simulate a 2-level combine: leaves {1,2}, {3}, root local {4}.
        let leaf1 = QueueStats::of_slice(&[1.0, 2.0]);
        let leaf2 = QueueStats::of(3.0);
        let root = QueueStats::of(4.0).merge(&leaf1).merge(&leaf2);
        assert_eq!(root, QueueStats::of_slice(&[1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn empty_stats_have_no_mean_or_variance() {
        let e = QueueStats::empty();
        assert_eq!(e.mean(), None);
        assert_eq!(e.variance(), None);
    }

    #[test]
    fn variance_never_negative_from_rounding() {
        let s = QueueStats::of_slice(&[1e8, 1e8, 1e8]);
        assert!(s.variance().unwrap() >= 0.0);
    }
}
