//! Combining-tree coordination between redirector nodes (§3.2).
//!
//! The distributed queuing strategy needs every redirector to know the
//! *global* per-principal queue lengths, but pairwise exchange costs
//! `O(n²)` messages per window. Instead, redirectors are organized into a
//! combining tree: leaves send their queue-length vectors up, interior
//! nodes fold in their own state and forward the partial sum, and the root
//! broadcasts the final aggregate back down — `2(n−1)` messages total, at
//! the price of the aggregate lagging reality by the tree's propagation
//! delay (evaluated in the paper's Figure 8 with a deliberate 10 s lag).
//!
//! This crate provides:
//!
//! * [`Topology`] — validated tree shapes (explicit parent arrays, or the
//!   [`Topology::balanced`] / [`Topology::star`] / [`Topology::chain`]
//!   constructors) with per-edge delays;
//! * [`Topology::aggregate`] — one up/down round over per-node vectors,
//!   reporting the global sum, the exact message count, and the end-to-end
//!   latency implied by the edge delays;
//! * [`QueueStats`] — the richer aggregate the paper mentions (max, min,
//!   average, variance) combined in the same single round;
//! * [`DelayedView`] — a timestamped pipeline that models what a redirector
//!   actually *sees*: the newest aggregate older than the propagation lag;
//! * [`CoordTransport`] / [`InProcessTree`] — the publish/read transport
//!   surface the coordination plane runs over, with the synchronous
//!   in-process tree as the zero-cost implementation (socket transports
//!   live in `covenant-wire`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod overlay;
mod stats;
mod topology;
mod transport;

pub use delay::DelayedView;
pub use overlay::{best_root, build_overlay};
pub use stats::QueueStats;
pub use topology::{AggregationRound, Topology, TreeError};
pub use transport::{CoordTransport, InProcessTree};
