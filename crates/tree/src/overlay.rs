//! Dynamic combining-tree construction over a WAN latency matrix.
//!
//! §3.2: "Several algorithms exist for dynamically overlaying trees on a
//! set of nodes in a wide area network, so we will not discuss this
//! further." This module supplies the missing piece so deployments can
//! derive a topology from measured pairwise latencies instead of writing
//! parent arrays by hand:
//!
//! * [`build_overlay`] — a latency-aware shortest-path tree (Prim/Dijkstra
//!   hybrid): each node attaches to the already-connected node that
//!   minimizes its *path latency to the root*, subject to a fan-out cap
//!   (high fan-out shortens the tree but concentrates message load).
//! * [`best_root`] — picks the root that minimizes the worst information
//!   lag over candidate roots.

use crate::{Topology, TreeError};

/// Builds a combining tree over nodes `0..n` from a symmetric pairwise
/// latency matrix (seconds), rooted at `root`, with at most `max_fanout`
/// children per node.
///
/// Greedy shortest-path attachment: repeatedly connect the unattached node
/// whose best available parent yields the smallest root-path latency.
/// With `max_fanout = n` this is exactly Dijkstra's shortest-path tree;
/// smaller caps trade depth for per-node message concentration.
pub fn build_overlay(
    latency: &[Vec<f64>],
    root: usize,
    max_fanout: usize,
) -> Result<Topology, TreeError> {
    let n = latency.len();
    if n == 0 {
        return Err(TreeError::Empty);
    }
    assert!(root < n, "root out of range");
    assert!(max_fanout >= 1, "fan-out must be at least 1");
    for row in latency {
        assert_eq!(row.len(), n, "latency matrix must be square");
        for &d in row {
            if !d.is_finite() || d < 0.0 {
                return Err(TreeError::BadDelay(d));
            }
        }
    }

    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut edge_delay = vec![0.0; n];
    let mut root_latency = vec![f64::INFINITY; n];
    let mut attached = vec![false; n];
    let mut children_count = vec![0usize; n];
    root_latency[root] = 0.0;
    attached[root] = true;

    for _ in 1..n {
        // Pick the unattached node with the cheapest feasible attachment.
        let mut best: Option<(usize, usize, f64)> = None; // (node, parent, root_lat)
        for v in 0..n {
            if attached[v] {
                continue;
            }
            for p in 0..n {
                if !attached[p] || children_count[p] >= max_fanout {
                    continue;
                }
                let lat = root_latency[p] + latency[v][p];
                if best.is_none_or(|(_, _, b)| lat < b) {
                    best = Some((v, p, lat));
                }
            }
        }
        let Some((v, p, lat)) = best else {
            // Every attached node is at its fan-out cap: should be
            // impossible with max_fanout ≥ 1 (a chain always fits), but
            // guard against latency-matrix degeneracies.
            return Err(TreeError::RootCount(0));
        };
        parent[v] = Some(p);
        edge_delay[v] = latency[v][p];
        root_latency[v] = lat;
        attached[v] = true;
        children_count[p] += 1;
    }

    Topology::from_parents(&parent, &edge_delay)
}

/// Evaluates every node as a candidate root and returns the one whose
/// overlay minimizes the worst-case information lag, together with the
/// winning topology.
pub fn best_root(latency: &[Vec<f64>], max_fanout: usize) -> Result<(usize, Topology), TreeError> {
    let n = latency.len();
    if n == 0 {
        return Err(TreeError::Empty);
    }
    let mut best: Option<(usize, Topology, f64)> = None;
    for root in 0..n {
        let t = build_overlay(latency, root, max_fanout)?;
        let worst = (0..n).map(|i| t.information_lag(i)).fold(0.0, f64::max);
        if best.as_ref().is_none_or(|(_, _, b)| worst < *b) {
            best = Some((root, t, worst));
        }
    }
    let (root, t, _) = best.expect("n >= 1");
    Ok((root, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Symmetric matrix helper.
    fn matrix(n: usize, f: impl Fn(usize, usize) -> f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { f(i.min(j), i.max(j)) }).collect())
            .collect()
    }

    #[test]
    fn uniform_latency_high_fanout_builds_star() {
        let m = matrix(6, |_, _| 0.05);
        let t = build_overlay(&m, 0, 8).unwrap();
        assert_eq!(t.root(), 0);
        for i in 1..6 {
            assert_eq!(t.parent(i), Some(0), "node {i} should attach to root");
        }
    }

    #[test]
    fn fanout_cap_forces_depth() {
        let m = matrix(7, |_, _| 0.05);
        let t = build_overlay(&m, 0, 2).unwrap();
        assert!(t.children(0).len() <= 2);
        // 7 nodes with fan-out 2: depth ≥ 2.
        let max_depth = (0..7)
            .map(|i| {
                let mut d = 0;
                let mut at = i;
                while let Some(p) = t.parent(at) {
                    d += 1;
                    at = p;
                }
                d
            })
            .max()
            .unwrap();
        assert!(max_depth >= 2);
    }

    #[test]
    fn shortest_path_attachment_prefers_cheap_links() {
        // Nodes 0,1,2: 0-1 cheap (0.01), 0-2 expensive (1.0), 1-2 cheap
        // (0.01): node 2 must route via node 1.
        let mut m = matrix(3, |_, _| 0.0);
        m[0][1] = 0.01;
        m[1][0] = 0.01;
        m[0][2] = 1.0;
        m[2][0] = 1.0;
        m[1][2] = 0.01;
        m[2][1] = 0.01;
        let t = build_overlay(&m, 0, 8).unwrap();
        assert_eq!(t.parent(2), Some(1));
        assert!((t.delay_to_root(2) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn aggregation_still_exact_on_overlay() {
        let m = matrix(9, |i, j| 0.01 * (i + j) as f64);
        let t = build_overlay(&m, 3, 3).unwrap();
        let locals: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64]).collect();
        assert_eq!(t.aggregate(&locals).total, vec![36.0]);
    }

    #[test]
    fn best_root_minimizes_worst_lag() {
        // A "line" metric: node i at position i; the middle node is the
        // best root.
        let m = matrix(5, |i, j| (j - i) as f64 * 0.1);
        let (root, t) = best_root(&m, 8).unwrap();
        assert_eq!(root, 2, "middle of the line minimizes worst lag");
        let worst = (0..5).map(|i| t.information_lag(i)).fold(0.0, f64::max);
        // From the middle: worst up-delay 0.2 → lag ≤ 0.4.
        assert!(worst <= 0.4 + 1e-12, "worst lag {worst}");
    }

    #[test]
    fn rejects_bad_matrices() {
        assert!(matches!(build_overlay(&[], 0, 2), Err(TreeError::Empty)));
        let m = vec![vec![0.0, -1.0], vec![-1.0, 0.0]];
        assert!(matches!(build_overlay(&m, 0, 2), Err(TreeError::BadDelay(_))));
    }

    #[test]
    fn singleton_overlay() {
        let t = build_overlay(&[vec![0.0]], 0, 1).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.messages_per_round(), 0);
    }
}
