//! Tree shapes and the up/down aggregation round.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while constructing a [`Topology`].
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// No node, or parent array empty.
    Empty,
    /// More or fewer than exactly one root (parent = `None`).
    RootCount(usize),
    /// A parent index was out of range.
    BadParent {
        /// Node with the bad parent pointer.
        node: usize,
        /// The out-of-range parent index.
        parent: usize,
    },
    /// The parent pointers contain a cycle (not a tree).
    Cycle(usize),
    /// A negative or non-finite edge delay.
    BadDelay(f64),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "tree must have at least one node"),
            TreeError::RootCount(n) => write!(f, "tree must have exactly one root, found {n}"),
            TreeError::BadParent { node, parent } => {
                write!(f, "node {node} has out-of-range parent {parent}")
            }
            TreeError::Cycle(node) => write!(f, "parent pointers cycle at node {node}"),
            TreeError::BadDelay(d) => write!(f, "edge delay must be finite and >= 0, got {d}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Result of one aggregation round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationRound {
    /// Element-wise global sum of every node's vector.
    pub total: Vec<f64>,
    /// Messages sent upward (one per non-root node).
    pub messages_up: usize,
    /// Messages sent downward (one per non-root node).
    pub messages_down: usize,
    /// End-to-end latency: slowest leaf-to-root path plus slowest
    /// root-to-node path, under the edge delays.
    pub latency: f64,
}

impl AggregationRound {
    /// Total messages for the round: `2(n−1)` for an `n`-node tree.
    pub fn messages(&self) -> usize {
        self.messages_up + self.messages_down
    }
}

/// A validated combining-tree topology over redirector nodes `0..n`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// Delay (seconds) of the edge from each node to its parent; unused for
    /// the root.
    edge_delay: Vec<f64>,
    root: usize,
    /// Nodes in a topological order with parents before children.
    topo_order: Vec<usize>,
}

impl Topology {
    /// Builds a topology from parent pointers and per-edge delays
    /// (`delays[i]` = delay of the edge `i → parent(i)`, ignored for the
    /// root).
    pub fn from_parents(parents: &[Option<usize>], delays: &[f64]) -> Result<Self, TreeError> {
        let n = parents.len();
        if n == 0 {
            return Err(TreeError::Empty);
        }
        assert_eq!(delays.len(), n, "delay vector length must match node count");
        for &d in delays {
            if !d.is_finite() || d < 0.0 {
                return Err(TreeError::BadDelay(d));
            }
        }
        let roots: Vec<usize> = (0..n).filter(|&i| parents[i].is_none()).collect();
        if roots.len() != 1 {
            return Err(TreeError::RootCount(roots.len()));
        }
        let root = roots[0];
        let mut children = vec![Vec::new(); n];
        for (i, parent) in parents.iter().enumerate() {
            if let Some(p) = *parent {
                if p >= n {
                    return Err(TreeError::BadParent { node: i, parent: p });
                }
                children[p].push(i);
            }
        }
        // Cycle check + topological order via BFS from the root.
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::from([root]);
        let mut seen = vec![false; n];
        seen[root] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &c in &children[u] {
                if seen[c] {
                    return Err(TreeError::Cycle(c));
                }
                seen[c] = true;
                queue.push_back(c);
            }
        }
        if let Some(stray) = (0..n).find(|&i| !seen[i]) {
            return Err(TreeError::Cycle(stray));
        }
        Ok(Topology {
            parent: parents.to_vec(),
            children,
            edge_delay: delays.to_vec(),
            root,
            topo_order: order,
        })
    }

    /// A balanced tree of `n` nodes with fan-out `arity` and uniform edge
    /// delay (node 0 is the root; node `i`'s parent is `(i−1)/arity`).
    pub fn balanced(n: usize, arity: usize, edge_delay: f64) -> Self {
        assert!(n >= 1 && arity >= 1);
        let parents: Vec<Option<usize>> = (0..n)
            .map(|i| if i == 0 { None } else { Some((i - 1) / arity) })
            .collect();
        Self::from_parents(&parents, &vec![edge_delay; n]).expect("balanced tree is valid")
    }

    /// A star: node 0 is the root, all others its direct children.
    pub fn star(n: usize, edge_delay: f64) -> Self {
        assert!(n >= 1);
        let parents: Vec<Option<usize>> =
            (0..n).map(|i| if i == 0 { None } else { Some(0) }).collect();
        Self::from_parents(&parents, &vec![edge_delay; n]).expect("star is valid")
    }

    /// A chain rooted at node 0 (worst-case depth).
    pub fn chain(n: usize, edge_delay: f64) -> Self {
        assert!(n >= 1);
        let parents: Vec<Option<usize>> =
            (0..n).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        Self::from_parents(&parents, &vec![edge_delay; n]).expect("chain is valid")
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for a zero-node tree (never constructible; kept for API
    /// symmetry).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Children of `node`.
    pub fn children(&self, node: usize) -> &[usize] {
        &self.children[node]
    }

    /// Parent of `node`.
    pub fn parent(&self, node: usize) -> Option<usize> {
        self.parent[node]
    }

    /// Sum of edge delays from `node` up to the root.
    pub fn delay_to_root(&self, node: usize) -> f64 {
        let mut d = 0.0;
        let mut at = node;
        while let Some(p) = self.parent[at] {
            d += self.edge_delay[at];
            at = p;
        }
        d
    }

    /// The information lag this topology imposes on `node`: slowest
    /// leaf-to-root delay (the aggregate cannot be formed earlier) plus the
    /// root-to-`node` broadcast delay.
    pub fn information_lag(&self, node: usize) -> f64 {
        let up = (0..self.len())
            .map(|i| self.delay_to_root(i))
            .fold(0.0, f64::max);
        up + self.delay_to_root(node)
    }

    /// Messages needed per aggregation round: `2(n−1)`.
    pub fn messages_per_round(&self) -> usize {
        2 * (self.len() - 1)
    }

    /// Messages a pairwise (all-to-all) exchange would need: `n(n−1)`.
    pub fn pairwise_messages(&self) -> usize {
        let n = self.len();
        n * (n - 1)
    }

    /// Runs one up/down aggregation round over per-node vectors
    /// (`local[i]` = node `i`'s queue-length vector). Interior nodes fold in
    /// their own vector exactly once, matching the paper's description.
    pub fn aggregate(&self, local: &[Vec<f64>]) -> AggregationRound {
        let n = self.len();
        assert_eq!(local.len(), n, "need one vector per node");
        let width = local.first().map_or(0, |v| v.len());
        for v in local {
            assert_eq!(v.len(), width, "all vectors must have equal width");
        }
        // Fold bottom-up in reverse topological order.
        let mut partial: Vec<Vec<f64>> = local.to_vec();
        for &u in self.topo_order.iter().rev() {
            if let Some(p) = self.parent[u] {
                // Avoid double borrow: take u's vector, then add into parent.
                let v = std::mem::take(&mut partial[u]);
                for (pe, ue) in partial[p].iter_mut().zip(&v) {
                    *pe += ue;
                }
                partial[u] = v;
            }
        }
        let total = partial[self.root].clone();
        let up = (0..n)
            .map(|i| self.delay_to_root(i))
            .fold(0.0, f64::max);
        let down = up; // broadcast retraces the same worst path
        AggregationRound {
            total,
            messages_up: n - 1,
            messages_down: n - 1,
            latency: up + down,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parents_validates() {
        assert_eq!(Topology::from_parents(&[], &[]), Err(TreeError::Empty));
        assert_eq!(
            Topology::from_parents(&[Some(1), Some(0)], &[0.0, 0.0]),
            Err(TreeError::RootCount(0))
        );
        assert_eq!(
            Topology::from_parents(&[None, None], &[0.0, 0.0]),
            Err(TreeError::RootCount(2))
        );
        assert_eq!(
            Topology::from_parents(&[None, Some(5)], &[0.0, 0.0]),
            Err(TreeError::BadParent { node: 1, parent: 5 })
        );
        assert_eq!(
            Topology::from_parents(&[None, Some(0), Some(1)], &[0.0, 0.0, 0.0])
                .unwrap()
                .len(),
            3
        );
        assert!(matches!(
            Topology::from_parents(&[None, Some(0)], &[0.0, -1.0]),
            Err(TreeError::BadDelay(_))
        ));
    }

    #[test]
    fn detects_cycle_among_non_root_nodes() {
        // 1 and 2 point at each other, disconnected from root 0.
        let r = Topology::from_parents(&[None, Some(2), Some(1)], &[0.0; 3]);
        assert!(matches!(r, Err(TreeError::Cycle(_))));
        let r = Topology::from_parents(&[None, Some(2), Some(1), Some(0)], &[0.0; 4]);
        assert!(matches!(r, Err(TreeError::Cycle(_))));
    }

    #[test]
    fn aggregate_sums_all_nodes() {
        let t = Topology::balanced(7, 2, 0.0);
        let local: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64, 1.0]).collect();
        let round = t.aggregate(&local);
        assert_eq!(round.total, vec![21.0, 7.0]);
        assert_eq!(round.messages(), 12); // 2(n-1)
    }

    #[test]
    fn aggregate_matches_flat_sum_on_every_shape() {
        for t in [
            Topology::balanced(10, 3, 0.1),
            Topology::star(10, 0.1),
            Topology::chain(10, 0.1),
        ] {
            let local: Vec<Vec<f64>> = (0..10).map(|i| vec![(i * i) as f64]).collect();
            let round = t.aggregate(&local);
            assert_eq!(round.total, vec![285.0]);
        }
    }

    #[test]
    fn message_complexity_formulas() {
        let t = Topology::balanced(16, 2, 0.0);
        assert_eq!(t.messages_per_round(), 30);
        assert_eq!(t.pairwise_messages(), 240);
        let single = Topology::star(1, 0.0);
        assert_eq!(single.messages_per_round(), 0);
    }

    #[test]
    fn latency_reflects_depth() {
        let chain = Topology::chain(4, 1.0); // depth 3
        let round = chain.aggregate(&vec![vec![1.0]; 4]);
        assert_eq!(round.latency, 6.0); // 3 up + 3 down
        let star = Topology::star(4, 1.0);
        let round = star.aggregate(&vec![vec![1.0]; 4]);
        assert_eq!(round.latency, 2.0);
    }

    #[test]
    fn information_lag_per_node() {
        let chain = Topology::chain(3, 2.0);
        assert_eq!(chain.information_lag(0), 4.0); // root: wait for leaf only
        assert_eq!(chain.information_lag(2), 8.0); // deepest: 4 up + 4 down
    }

    #[test]
    fn interior_nodes_counted_once() {
        // A 3-node chain where the middle node has load: total must count it
        // exactly once.
        let t = Topology::chain(3, 0.0);
        let round = t.aggregate(&[vec![0.0], vec![5.0], vec![0.0]]);
        assert_eq!(round.total, vec![5.0]);
    }

    #[test]
    fn singleton_tree_aggregates_self() {
        let t = Topology::star(1, 0.0);
        let round = t.aggregate(&[vec![3.0, 4.0]]);
        assert_eq!(round.total, vec![3.0, 4.0]);
        assert_eq!(round.messages(), 0);
        assert_eq!(round.latency, 0.0);
    }

    #[test]
    fn delay_to_root_accumulates() {
        let t = Topology::from_parents(&[None, Some(0), Some(1)], &[0.0, 1.5, 2.5]).unwrap();
        assert_eq!(t.delay_to_root(0), 0.0);
        assert_eq!(t.delay_to_root(1), 1.5);
        assert_eq!(t.delay_to_root(2), 4.0);
    }
}
