//! Modelling what a redirector *sees*: aggregates delayed by propagation.
//!
//! The combining tree makes global queue information available only after
//! its round-trip latency; the paper's Figure 8 experiment injects a 10 s
//! lag and shows the schedulers adapt gracefully. [`DelayedView`] is the
//! reusable primitive: publish timestamped values, read back the newest
//! value that is at least `lag` old.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A timestamped single-producer pipeline with a fixed visibility lag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayedView<T> {
    lag: f64,
    pending: VecDeque<(f64, T)>,
    visible: Option<(f64, T)>,
}

impl<T> DelayedView<T> {
    /// Creates a view with the given visibility lag (seconds).
    pub fn new(lag: f64) -> Self {
        assert!(lag >= 0.0 && lag.is_finite(), "lag must be finite and >= 0");
        DelayedView { lag, pending: VecDeque::new(), visible: None }
    }

    /// The configured lag.
    pub fn lag(&self) -> f64 {
        self.lag
    }

    /// Publishes a value observed at `now`. Timestamps must be
    /// non-decreasing across calls.
    pub fn publish(&mut self, now: f64, value: T) {
        if let Some(&(last, _)) = self.pending.back() {
            assert!(now >= last, "publish timestamps must be non-decreasing");
        }
        self.pending.push_back((now, value));
    }

    /// Returns the newest value whose publish time is ≤ `now − lag`, or
    /// `None` if nothing has become visible yet. Values are retained so
    /// repeated reads at the same time agree.
    pub fn read(&mut self, now: f64) -> Option<&T> {
        let cutoff = now - self.lag;
        while let Some(&(t, _)) = self.pending.front() {
            if t <= cutoff {
                self.visible = self.pending.pop_front();
            } else {
                break;
            }
        }
        self.visible.as_ref().map(|(_, v)| v)
    }

    /// Like [`Self::read`], but additionally requires the publish time to
    /// be *strictly* before `now`: a value published at `now` itself is
    /// never returned, even at zero lag. This is the read the live
    /// coordinator uses inside a window-roll round, where every node
    /// publishes at the same boundary time and must not observe same-round
    /// publishes (the simulator gets the same effect from its centralized
    /// aggregate-then-deliver ordering). Values are retained, so the view
    /// stays sticky like `read`.
    pub fn read_before(&mut self, now: f64) -> Option<&T> {
        let cutoff = now - self.lag;
        while let Some(&(t, _)) = self.pending.front() {
            if t <= cutoff && t < now {
                self.visible = self.pending.pop_front();
            } else {
                break;
            }
        }
        self.visible.as_ref().map(|(_, v)| v)
    }

    /// Age of the currently visible value at `now`, if any.
    pub fn visible_age(&self, now: f64) -> Option<f64> {
        self.visible.as_ref().map(|(t, _)| now - t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nothing_visible_before_lag() {
        let mut v = DelayedView::new(10.0);
        v.publish(0.0, 42);
        assert_eq!(v.read(5.0), None);
        assert_eq!(v.read(9.99), None);
        assert_eq!(v.read(10.0), Some(&42));
    }

    #[test]
    fn newest_eligible_wins() {
        let mut v = DelayedView::new(1.0);
        v.publish(0.0, 1);
        v.publish(0.5, 2);
        v.publish(2.0, 3);
        assert_eq!(v.read(1.6), Some(&2)); // 0.5 ≤ 0.6, 2.0 not yet
        assert_eq!(v.read(3.0), Some(&3));
    }

    #[test]
    fn zero_lag_is_immediate() {
        let mut v = DelayedView::new(0.0);
        v.publish(1.0, "x");
        assert_eq!(v.read(1.0), Some(&"x"));
    }

    #[test]
    fn visible_value_is_sticky() {
        let mut v = DelayedView::new(1.0);
        v.publish(0.0, 7);
        assert_eq!(v.read(2.0), Some(&7));
        // No new publishes: later reads still return the last visible value.
        assert_eq!(v.read(100.0), Some(&7));
        assert_eq!(v.visible_age(100.0), Some(100.0));
    }

    #[test]
    fn read_before_excludes_same_instant_at_zero_lag() {
        let mut v = DelayedView::new(0.0);
        v.publish(1.0, 1);
        // A same-round publish is invisible to read_before…
        assert_eq!(v.read_before(1.0), None);
        // …but becomes visible at the next boundary, and `read` still sees
        // it immediately.
        assert_eq!(v.read_before(1.1), Some(&1));
        let mut w = DelayedView::new(0.0);
        w.publish(1.0, 1);
        assert_eq!(w.read(1.0), Some(&1));
    }

    #[test]
    fn read_before_keeps_boundary_visibility_under_lag() {
        // With lag > 0 the entry exactly `lag` old is still visible,
        // matching `read`'s inclusive cutoff (Figure 8's 10 s lag lands on
        // exact window multiples).
        let mut v = DelayedView::new(1.0);
        v.publish(0.0, 5);
        assert_eq!(v.read_before(1.0), Some(&5));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut v = DelayedView::new(1.0);
        v.publish(5.0, 1);
        v.publish(4.0, 2);
    }
}
