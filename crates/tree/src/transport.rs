//! Transport abstraction beneath the coordination plane.
//!
//! The enforcement stack talks to the combining tree through a narrow
//! publish/read surface. [`CoordTransport`] is that surface as a trait, so
//! the same `Coordinator` (and everything above it — `TreeCoordination`,
//! `AdmissionControl`, `ShardCore`) runs over three interchangeable
//! substrates:
//!
//! * [`InProcessTree`] — the zero-cost path: one mutex-guarded state block
//!   shared by every node's threads, aggregation computed synchronously on
//!   each publish (this module);
//! * the sharded live planes — the same [`InProcessTree`], with each
//!   reactor shard joined as one tree leaf;
//! * `covenant-wire`'s socket transport — real processes exchanging
//!   length-prefixed frames along tree edges, where propagation delay and
//!   message counts are *measured* rather than injected.
//!
//! Timestamps are plain `f64` seconds so the same implementations serve
//! wall-clock deployments and virtual-time differential replays.

use crate::{DelayedView, Topology};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Publish/read access to the combining tree for one deployment.
///
/// Implementations must preserve the two properties the enforcement core's
/// read-before-publish tick order relies on:
///
/// 1. **Strict-before reads**: [`CoordTransport::read_before`] never
///    returns an aggregate that includes a publish at time `t >= now` —
///    inside a window-roll round, where every node publishes at the same
///    boundary, no node observes this round's publications.
/// 2. **Sticky visibility**: once an aggregate has become visible to a
///    node it stays visible (possibly superseded by a newer one) — a
///    missing or late round degrades to the last good value, never to
///    `None`.
pub trait CoordTransport: Send + Sync {
    /// Number of tree nodes.
    fn nodes(&self) -> usize;

    /// Publishes node `node`'s demand vector at time `t`, feeding one
    /// aggregation round.
    fn publish_at(&self, node: usize, demand: Vec<f64>, t: f64);

    /// The newest aggregate visible to `node` at `t`, including rounds
    /// published exactly at `t` (once their propagation lag has elapsed).
    fn read_at(&self, node: usize, t: f64) -> Option<Vec<f64>>;

    /// The newest aggregate visible to `node` strictly before `t`.
    fn read_before(&self, node: usize, t: f64) -> Option<Vec<f64>>;

    /// Total tree messages exchanged so far, as observable from this
    /// endpoint. The in-process tree counts every edge of every round;
    /// a socket transport counts the frames it has actually sent and
    /// received.
    fn messages(&self) -> u64;

    /// The clock epoch this transport stamps message arrivals with, if it
    /// owns a physical clock. A `Coordinator` built over the transport
    /// adopts it so `Coordinator::now` and arrival timestamps share one
    /// time base. In-process transports have no clock of their own.
    fn clock_epoch(&self) -> Option<Instant> {
        None
    }
}

struct InProcessState {
    /// Latest demand vector published by each node.
    demands: Vec<Option<Vec<f64>>>,
    /// Per-node delayed views of the global aggregate.
    views: Vec<DelayedView<Vec<f64>>>,
    /// Total tree messages "sent" (2(n−1) per aggregation).
    messages: u64,
    /// Timestamp of the newest aggregation round, used to clamp explicit
    /// publish times so the per-node views stay monotone even when the
    /// caller's clock jitters.
    last_publish_t: f64,
}

/// The in-process combining tree: the zero-cost [`CoordTransport`] every
/// single-process deployment (simulator replays, sharded live planes,
/// unit tests) runs over.
///
/// Every publish triggers one synchronous aggregation round — the tree
/// combines whatever each node last reported, exactly the estimate-lag
/// semantics of the paper's periodic exchange — and the result becomes
/// visible to each node once its tree propagation lag (plus any injected
/// extra lag) has elapsed.
pub struct InProcessTree {
    topology: Arc<Topology>,
    state: Mutex<InProcessState>,
}

impl InProcessTree {
    /// A tree over `topology` with `extra_lag` seconds added to every
    /// node's visibility delay (Figure 8's injected 10 s).
    pub fn new(topology: Topology, extra_lag: f64) -> Self {
        let n = topology.len();
        let views = (0..n)
            .map(|i| DelayedView::new(topology.information_lag(i) + extra_lag))
            .collect();
        InProcessTree {
            topology: Arc::new(topology),
            state: Mutex::new(InProcessState {
                demands: vec![None; n],
                views,
                messages: 0,
                last_publish_t: 0.0,
            }),
        }
    }

    /// The tree shape this transport aggregates over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

impl CoordTransport for InProcessTree {
    fn nodes(&self) -> usize {
        self.topology.len()
    }

    fn publish_at(&self, node: usize, demand: Vec<f64>, t: f64) {
        let mut st = self.state.lock();
        let t = t.max(st.last_publish_t);
        st.last_publish_t = t;
        let width = demand.len();
        if let Some(slot) = st.demands.get_mut(node) {
            *slot = Some(demand);
        }
        let locals: Vec<Vec<f64>> = st
            .demands
            .iter()
            .map(|d| d.clone().unwrap_or_else(|| vec![0.0; width]))
            .collect();
        let round = self.topology.aggregate(&locals);
        st.messages += round.messages() as u64;
        for v in &mut st.views {
            v.publish(t, round.total.clone());
        }
    }

    fn read_at(&self, node: usize, t: f64) -> Option<Vec<f64>> {
        let mut st = self.state.lock();
        st.views.get_mut(node)?.read(t).cloned()
    }

    fn read_before(&self, node: usize, t: f64) -> Option<Vec<f64>> {
        let mut st = self.state.lock();
        st.views.get_mut(node)?.read_before(t).cloned()
    }

    fn messages(&self) -> u64 {
        self.state.lock().messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_across_publishers() {
        let t = InProcessTree::new(Topology::star(2, 0.0), 0.0);
        t.publish_at(0, vec![10.0, 0.0], 0.0);
        t.publish_at(1, vec![5.0, 7.0], 0.0);
        let agg = t.read_at(0, 0.0).expect("visible with zero lag");
        assert_eq!(agg, vec![15.0, 7.0]);
        assert_eq!(t.read_at(1, 0.0).unwrap(), vec![15.0, 7.0]);
    }

    #[test]
    fn missing_publishers_count_as_zero() {
        let t = InProcessTree::new(Topology::star(3, 0.0), 0.0);
        t.publish_at(1, vec![4.0], 0.0);
        assert_eq!(t.read_at(1, 0.0).unwrap(), vec![4.0]);
    }

    #[test]
    fn extra_lag_hides_fresh_aggregates() {
        let t = InProcessTree::new(Topology::star(2, 0.0), 30.0);
        t.publish_at(0, vec![1.0], 1.0);
        // 30 s of lag have not elapsed at t = 2.
        assert_eq!(t.read_at(0, 2.0), None);
        assert_eq!(t.read_at(1, 2.0), None);
    }

    #[test]
    fn message_count_grows_per_round() {
        let t = InProcessTree::new(Topology::star(4, 0.0), 0.0);
        assert_eq!(t.messages(), 0);
        t.publish_at(0, vec![1.0], 0.0);
        assert_eq!(t.messages(), 6); // 2(n-1) = 6
        t.publish_at(1, vec![1.0], 0.0);
        assert_eq!(t.messages(), 12);
    }

    #[test]
    fn read_before_excludes_same_instant_rounds() {
        let t = InProcessTree::new(Topology::star(2, 0.0), 0.0);
        t.publish_at(0, vec![3.0], 1.0);
        assert_eq!(t.read_before(0, 1.0), None);
        assert_eq!(t.read_before(0, 1.1).unwrap(), vec![3.0]);
    }

    #[test]
    fn jittering_publish_times_stay_monotone() {
        let t = InProcessTree::new(Topology::star(2, 0.0), 0.0);
        t.publish_at(0, vec![1.0], 5.0);
        // An earlier timestamp from a lagging caller clamps forward.
        t.publish_at(1, vec![2.0], 4.0);
        assert_eq!(t.read_before(0, 5.5).unwrap(), vec![3.0]);
    }
}
