//! Property tests for combining-tree aggregation.

use covenant_tree::{DelayedView, QueueStats, Topology};
use proptest::prelude::*;

/// Strategy: random valid parent arrays (node i's parent < i → acyclic,
/// rooted at 0) with random edge delays, then a random per-node vector.
fn topology_and_locals() -> impl Strategy<Value = (Topology, Vec<Vec<f64>>)> {
    (1usize..20, 1usize..5).prop_flat_map(|(n, width)| {
        let parents = proptest::collection::vec(0usize..20, n.saturating_sub(1));
        let delays = proptest::collection::vec(0.0..2.0f64, n);
        let locals = proptest::collection::vec(
            proptest::collection::vec(0.0..100.0f64, width),
            n,
        );
        (parents, delays, locals).prop_map(move |(rawp, delays, locals)| {
            let parents: Vec<Option<usize>> = std::iter::once(None)
                .chain(rawp.iter().enumerate().map(|(i, &r)| Some(r % (i + 1))))
                .collect();
            let t = Topology::from_parents(&parents, &delays).expect("valid by construction");
            (t, locals)
        })
    })
}

proptest! {
    /// Tree aggregation equals the flat element-wise sum for any topology.
    #[test]
    fn aggregate_equals_flat_sum((t, locals) in topology_and_locals()) {
        let round = t.aggregate(&locals);
        let width = locals[0].len();
        for k in 0..width {
            let flat: f64 = locals.iter().map(|v| v[k]).sum();
            prop_assert!((round.total[k] - flat).abs() < 1e-6);
        }
        prop_assert_eq!(round.messages(), 2 * (t.len() - 1));
    }

    /// Latency equals twice the worst node-to-root delay.
    #[test]
    fn latency_is_twice_worst_depth((t, locals) in topology_and_locals()) {
        let round = t.aggregate(&locals);
        let worst = (0..t.len()).map(|i| t.delay_to_root(i)).fold(0.0, f64::max);
        prop_assert!((round.latency - 2.0 * worst).abs() < 1e-9);
        // Per-node information lag ≥ the worst up-delay.
        for i in 0..t.len() {
            prop_assert!(t.information_lag(i) >= worst - 1e-9);
        }
    }

    /// QueueStats merging is order-independent: any binary merge tree over
    /// the same observations yields the flat summary.
    #[test]
    fn stats_merge_order_independent(values in proptest::collection::vec(0.0..1e6f64, 1..40), split in 1usize..39) {
        let flat = QueueStats::of_slice(&values);
        let k = split.min(values.len() - 1).max(1).min(values.len());
        let left = QueueStats::of_slice(&values[..k]);
        let right = QueueStats::of_slice(&values[k..]);
        let merged = left.merge(&right);
        prop_assert_eq!(merged.count, flat.count);
        prop_assert!((merged.sum - flat.sum).abs() < 1e-6);
        prop_assert!((merged.max - flat.max).abs() < 1e-12);
        prop_assert!((merged.min - flat.min).abs() < 1e-12);
    }

    /// DelayedView never reveals a value younger than the lag, and always
    /// reveals the newest sufficiently-old value.
    #[test]
    fn delayed_view_respects_lag(
        lag in 0.0..5.0f64,
        times in proptest::collection::vec(0.0..10.0f64, 1..20),
        probe in 0.0..20.0f64,
    ) {
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut view = DelayedView::new(lag);
        for (i, &t) in sorted.iter().enumerate() {
            view.publish(t, i);
        }
        let got = view.read(probe).copied();
        let expected = sorted
            .iter()
            .enumerate()
            .filter(|(_, &t)| t <= probe - lag)
            .map(|(i, _)| i)
            .next_back();
        prop_assert_eq!(got, expected);
    }
}
