//! Property tests for the simplex solver.

use covenant_lp::{LpOutcome, Problem, Relation};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Strategy: a random LP with n vars, m `≤` constraints with non-negative
/// coefficients and rhs (always feasible at x = 0, always bounded when all
/// objective coefficients ≤ capped upper bounds are added).
fn bounded_lp() -> impl Strategy<Value = Problem> {
    (2usize..6, 1usize..6).prop_flat_map(|(n, m)| {
        let obj = proptest::collection::vec(-5.0..5.0f64, n);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(0.0..4.0f64, n), 0.5..50.0f64),
            m,
        );
        let ubs = proptest::collection::vec(0.0..20.0f64, n);
        (obj, rows, ubs).prop_map(move |(obj, rows, ubs)| {
            let mut p = Problem::new(n);
            p.set_objective(obj);
            for (coeffs, rhs) in rows {
                let sparse: Vec<(usize, f64)> =
                    coeffs.into_iter().enumerate().collect();
                p.add_constraint(sparse, Relation::Le, rhs);
            }
            for (i, ub) in ubs.into_iter().enumerate() {
                p.set_upper_bound(i, ub);
            }
            p
        })
    })
}

/// Strategy: a random LP mixing all three relation kinds, with upper bounds
/// on every variable. May be infeasible (tight `≥`/`=` rows) — exercises
/// phase 1 and outcome classification, not just the happy path.
fn mixed_lp() -> impl Strategy<Value = Problem> {
    (2usize..6, 1usize..6).prop_flat_map(|(n, m)| {
        let obj = proptest::collection::vec(-5.0..5.0f64, n);
        let rows = proptest::collection::vec(
            (
                proptest::collection::vec(0.0..4.0f64, n),
                0usize..3, // 0 = Le, 1 = Ge, 2 = Eq
                0.5..30.0f64,
            ),
            m,
        );
        let ubs = proptest::collection::vec(0.0..20.0f64, n);
        (obj, rows, ubs).prop_map(move |(obj, rows, ubs)| {
            let mut p = Problem::new(n);
            p.set_objective(obj);
            for (coeffs, rel, rhs) in rows {
                let rel = match rel {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                let sparse: Vec<(usize, f64)> =
                    coeffs.into_iter().enumerate().collect();
                p.add_constraint(sparse, rel, rhs);
            }
            for (i, ub) in ubs.into_iter().enumerate() {
                p.set_upper_bound(i, ub);
            }
            p
        })
    })
}

/// Asserts the optimized solver and the retained naive reference agree on
/// outcome classification, and on the objective within `1e-6` when optimal.
fn assert_matches_reference(p: &Problem) -> Result<(), TestCaseError> {
    let fast = p.solve();
    let slow = p.solve_reference();
    match (&fast, &slow) {
        (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
            prop_assert!(
                (a.objective - b.objective).abs() < 1e-6,
                "fast {} vs reference {}",
                a.objective,
                b.objective
            );
            prop_assert!(p.is_feasible(&a.x, 1e-6), "fast optimum infeasible");
        }
        _ => prop_assert_eq!(
            std::mem::discriminant(&fast),
            std::mem::discriminant(&slow),
            "fast {:?} vs reference {:?}",
            fast,
            slow
        ),
    }
    Ok(())
}

proptest! {
    /// The Dantzig/flat-tableau solver must classify and value every
    /// bounded-feasible LP exactly as the retained reference does.
    #[test]
    fn optimized_matches_reference_on_bounded_lps(p in bounded_lp()) {
        assert_matches_reference(&p)?;
    }

    /// Same equivalence on LPs with `≥`/`=` rows, where phase 1 (artificial
    /// variables) and infeasibility detection come into play.
    #[test]
    fn optimized_matches_reference_on_mixed_lps(p in mixed_lp()) {
        assert_matches_reference(&p)?;
    }

    /// Every bounded-feasible LP must solve to Optimal, and the solution
    /// must satisfy every constraint.
    #[test]
    fn optimal_solutions_are_feasible(p in bounded_lp()) {
        match p.solve() {
            LpOutcome::Optimal(s) => {
                prop_assert!(p.is_feasible(&s.x, 1e-6), "infeasible optimum {:?}", s.x);
                prop_assert!((p.objective_at(&s.x) - s.objective).abs() < 1e-6);
            }
            other => prop_assert!(false, "expected optimal, got {other:?}"),
        }
    }

    /// The optimum dominates the origin and a family of axis-aligned
    /// feasible candidates.
    #[test]
    fn optimum_dominates_candidates(p in bounded_lp()) {
        let s = p.solve().optimal().expect("bounded feasible LP");
        let zero = vec![0.0; p.n_vars()];
        prop_assert!(p.is_feasible(&zero, 1e-9));
        prop_assert!(s.objective >= p.objective_at(&zero) - 1e-6);
        // Candidates: scalings of the optimum.
        for frac in [0.25, 0.5, 0.75] {
            let cand: Vec<f64> = s.x.iter().map(|v| v * frac).collect();
            if p.is_feasible(&cand, 1e-9) {
                prop_assert!(
                    s.objective >= p.objective_at(&cand) - 1e-6,
                    "candidate beats optimum"
                );
            }
        }
    }

    /// Solving twice yields identical results (full determinism).
    #[test]
    fn deterministic(p in bounded_lp()) {
        prop_assert_eq!(p.solve(), p.solve());
    }

    /// Adding a redundant constraint (a duplicate of an existing row) never
    /// changes the optimal objective.
    #[test]
    fn redundant_rows_do_not_change_value(p in bounded_lp()) {
        let s1 = p.solve().optimal().expect("optimal");
        let mut p2 = p.clone();
        if let Some(c) = p.constraints().first() {
            p2.add_constraint(c.coeffs.clone(), c.rel, c.rhs);
        }
        let s2 = p2.solve().optimal().expect("still optimal");
        prop_assert!((s1.objective - s2.objective).abs() < 1e-6);
    }

    /// Tightening a variable's upper bound never increases the optimum of a
    /// maximization with non-negative objective.
    #[test]
    fn monotone_in_upper_bounds(p in bounded_lp(), var in 0usize..6, cut in 0.1..0.9f64) {
        // Make the objective non-negative so monotonicity holds.
        let mut pos = p.clone();
        let obj: Vec<f64> = p.objective().iter().map(|c| c.abs()).collect();
        pos.set_objective(obj);
        let var = var % pos.n_vars();
        let s1 = pos.solve().optimal().expect("optimal");
        let mut tighter = pos.clone();
        let old = tighter.upper_bounds()[var].unwrap_or(20.0);
        tighter.set_upper_bound(var, old * cut);
        let s2 = tighter.solve().optimal().expect("optimal");
        prop_assert!(s2.objective <= s1.objective + 1e-6);
    }
}
