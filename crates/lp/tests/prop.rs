//! Property tests for the simplex solvers (dense tableau and warm-started
//! revised dual simplex).

use covenant_lp::{LpOutcome, Problem, Relation, WarmBasis, WarmOutcome};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Strategy: a random LP with n vars, m `≤` constraints with non-negative
/// coefficients and rhs (always feasible at x = 0, always bounded when all
/// objective coefficients ≤ capped upper bounds are added).
fn bounded_lp() -> impl Strategy<Value = Problem> {
    (2usize..6, 1usize..6).prop_flat_map(|(n, m)| {
        let obj = proptest::collection::vec(-5.0..5.0f64, n);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(0.0..4.0f64, n), 0.5..50.0f64),
            m,
        );
        let ubs = proptest::collection::vec(0.0..20.0f64, n);
        (obj, rows, ubs).prop_map(move |(obj, rows, ubs)| {
            let mut p = Problem::new(n);
            p.set_objective(obj);
            for (coeffs, rhs) in rows {
                let sparse: Vec<(usize, f64)> =
                    coeffs.into_iter().enumerate().collect();
                p.add_constraint(sparse, Relation::Le, rhs);
            }
            for (i, ub) in ubs.into_iter().enumerate() {
                p.set_upper_bound(i, ub);
            }
            p
        })
    })
}

/// Strategy: a random LP mixing all three relation kinds, with upper bounds
/// on every variable. May be infeasible (tight `≥`/`=` rows) — exercises
/// phase 1 and outcome classification, not just the happy path.
fn mixed_lp() -> impl Strategy<Value = Problem> {
    (2usize..6, 1usize..6).prop_flat_map(|(n, m)| {
        let obj = proptest::collection::vec(-5.0..5.0f64, n);
        let rows = proptest::collection::vec(
            (
                proptest::collection::vec(0.0..4.0f64, n),
                0usize..3, // 0 = Le, 1 = Ge, 2 = Eq
                0.5..30.0f64,
            ),
            m,
        );
        let ubs = proptest::collection::vec(0.0..20.0f64, n);
        (obj, rows, ubs).prop_map(move |(obj, rows, ubs)| {
            let mut p = Problem::new(n);
            p.set_objective(obj);
            for (coeffs, rel, rhs) in rows {
                let rel = match rel {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                let sparse: Vec<(usize, f64)> =
                    coeffs.into_iter().enumerate().collect();
                p.add_constraint(sparse, rel, rhs);
            }
            for (i, ub) in ubs.into_iter().enumerate() {
                p.set_upper_bound(i, ub);
            }
            p
        })
    })
}

/// Asserts the optimized solver and the retained naive reference agree on
/// outcome classification, and on the objective within `1e-6` when optimal.
fn assert_matches_reference(p: &Problem) -> Result<(), TestCaseError> {
    let fast = p.solve();
    let slow = p.solve_reference();
    match (&fast, &slow) {
        (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
            prop_assert!(
                (a.objective - b.objective).abs() < 1e-6,
                "fast {} vs reference {}",
                a.objective,
                b.objective
            );
            prop_assert!(p.is_feasible(&a.x, 1e-6), "fast optimum infeasible");
        }
        _ => prop_assert_eq!(
            std::mem::discriminant(&fast),
            std::mem::discriminant(&slow),
            "fast {:?} vs reference {:?}",
            fast,
            slow
        ),
    }
    Ok(())
}

/// Asserts one warm-engine solve agrees with the reference oracle. Every
/// variable in the generated problems carries a finite upper bound, so the
/// warm engine must never declare the problem `Unsuitable`.
fn assert_warm_matches_reference(
    p: &Problem,
    warm: &mut WarmBasis,
) -> Result<(), TestCaseError> {
    let out = p.solve_warm(warm);
    match p.solve_reference() {
        LpOutcome::Optimal(s) => {
            prop_assert_eq!(out, WarmOutcome::Optimal, "reference found {}", s.objective);
            prop_assert!(
                (warm.objective_value() - s.objective).abs() < 1e-6,
                "warm {} vs reference {}",
                warm.objective_value(),
                s.objective
            );
            prop_assert!(p.is_feasible(warm.x(), 1e-6), "warm optimum infeasible");
        }
        LpOutcome::Infeasible => {
            prop_assert_eq!(out, WarmOutcome::Infeasible);
        }
        other => prop_assert!(false, "reference returned {:?}", other),
    }
    Ok(())
}

proptest! {
    /// The Dantzig/flat-tableau solver must classify and value every
    /// bounded-feasible LP exactly as the retained reference does.
    #[test]
    fn optimized_matches_reference_on_bounded_lps(p in bounded_lp()) {
        assert_matches_reference(&p)?;
    }

    /// Same equivalence on LPs with `≥`/`=` rows, where phase 1 (artificial
    /// variables) and infeasibility detection come into play.
    #[test]
    fn optimized_matches_reference_on_mixed_lps(p in mixed_lp()) {
        assert_matches_reference(&p)?;
    }

    /// Every bounded-feasible LP must solve to Optimal, and the solution
    /// must satisfy every constraint.
    #[test]
    fn optimal_solutions_are_feasible(p in bounded_lp()) {
        match p.solve() {
            LpOutcome::Optimal(s) => {
                prop_assert!(p.is_feasible(&s.x, 1e-6), "infeasible optimum {:?}", s.x);
                prop_assert!((p.objective_at(&s.x) - s.objective).abs() < 1e-6);
            }
            other => prop_assert!(false, "expected optimal, got {other:?}"),
        }
    }

    /// The optimum dominates the origin and a family of axis-aligned
    /// feasible candidates.
    #[test]
    fn optimum_dominates_candidates(p in bounded_lp()) {
        let s = p.solve().optimal().expect("bounded feasible LP");
        let zero = vec![0.0; p.n_vars()];
        prop_assert!(p.is_feasible(&zero, 1e-9));
        prop_assert!(s.objective >= p.objective_at(&zero) - 1e-6);
        // Candidates: scalings of the optimum.
        for frac in [0.25, 0.5, 0.75] {
            let cand: Vec<f64> = s.x.iter().map(|v| v * frac).collect();
            if p.is_feasible(&cand, 1e-9) {
                prop_assert!(
                    s.objective >= p.objective_at(&cand) - 1e-6,
                    "candidate beats optimum"
                );
            }
        }
    }

    /// Solving twice yields identical results (full determinism).
    #[test]
    fn deterministic(p in bounded_lp()) {
        prop_assert_eq!(p.solve(), p.solve());
    }

    /// Adding a redundant constraint (a duplicate of an existing row) never
    /// changes the optimal objective.
    #[test]
    fn redundant_rows_do_not_change_value(p in bounded_lp()) {
        let s1 = p.solve().optimal().expect("optimal");
        let mut p2 = p.clone();
        if let Some(c) = p.constraints().first() {
            p2.add_constraint(c.coeffs.clone(), c.rel, c.rhs);
        }
        let s2 = p2.solve().optimal().expect("still optimal");
        prop_assert!((s1.objective - s2.objective).abs() < 1e-6);
    }

    /// The warm (revised dual simplex) engine must classify and value every
    /// generated LP — including infeasible ones — exactly as the reference.
    #[test]
    fn warm_matches_reference_on_mixed_lps(p in mixed_lp()) {
        assert_warm_matches_reference(&p, &mut WarmBasis::new())?;
    }

    /// Window regime: one skeleton, a walk of queue-like rhs/bound
    /// perturbations, one persistent basis. Every re-solve must match the
    /// reference, and after the first solve the basis must actually be
    /// reused (warm, not silently cold-restarted).
    #[test]
    fn warm_rhs_walk_matches_reference(
        p in bounded_lp(),
        deltas in proptest::collection::vec(
            (proptest::collection::vec(-3.0..3.0f64, 6), -2.0..2.0f64),
            1..8,
        ),
    ) {
        let mut warm = WarmBasis::new();
        assert_warm_matches_reference(&p, &mut warm)?;
        let mut window = p.clone();
        for (rhs_d, ub_d) in &deltas {
            for (i, d) in rhs_d.iter().take(window.n_constraints()).enumerate() {
                let rhs = window.constraints()[i].rhs;
                window.set_constraint_rhs(i, (rhs + d).max(0.1));
            }
            let ub0 = window.upper_bounds()[0].unwrap_or(20.0);
            window.set_upper_bound_exact(0, (ub0 + ub_d).max(0.0));
            assert_warm_matches_reference(&window, &mut warm)?;
        }
        let stats = warm.stats();
        prop_assert_eq!(stats.solves, 1 + deltas.len() as u64);
        prop_assert!(
            stats.warm_solves >= deltas.len() as u64,
            "expected warm reuse, got {:?}",
            stats
        );
    }

    /// A shape change mid-walk must be detected and answered with a cold
    /// restart that still matches the reference, and warm reuse must resume
    /// on the shape that follows.
    #[test]
    fn warm_shape_change_cold_restarts(a in bounded_lp(), b in mixed_lp()) {
        // Guarantee `b` really is a different shape (more rows than `a`).
        let mut b = b;
        while b.n_constraints() <= a.n_constraints() {
            b.add_constraint(vec![(0, 1.0)], Relation::Le, 1000.0);
        }
        let mut warm = WarmBasis::new();
        assert_warm_matches_reference(&a, &mut warm)?;
        assert_warm_matches_reference(&a, &mut warm)?;
        assert_warm_matches_reference(&b, &mut warm)?;
        let after_b = warm.stats().cold_starts;
        prop_assert!(after_b >= 2, "shape change must cold start: {:?}", warm.stats());
        assert_warm_matches_reference(&a, &mut warm)?;
    }

    /// Tightening a variable's upper bound never increases the optimum of a
    /// maximization with non-negative objective.
    #[test]
    fn monotone_in_upper_bounds(p in bounded_lp(), var in 0usize..6, cut in 0.1..0.9f64) {
        // Make the objective non-negative so monotonicity holds.
        let mut pos = p.clone();
        let obj: Vec<f64> = p.objective().iter().map(|c| c.abs()).collect();
        pos.set_objective(obj);
        let var = var % pos.n_vars();
        let s1 = pos.solve().optimal().expect("optimal");
        let mut tighter = pos.clone();
        let old = tighter.upper_bounds()[var].unwrap_or(20.0);
        tighter.set_upper_bound(var, old * cut);
        let s2 = tighter.solve().optimal().expect("optimal");
        prop_assert!(s2.objective <= s1.objective + 1e-6);
    }
}
