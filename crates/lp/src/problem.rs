//! Problem construction API.

use crate::simplex::{self, LpOutcome, LpStatus, SimplexWorkspace};
use std::fmt;

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ a_j x_j ≤ b`
    Le,
    /// `Σ a_j x_j ≥ b`
    Ge,
    /// `Σ a_j x_j = b`
    Eq,
}

/// One linear constraint in sparse form.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices may repeat (summed).
    pub coeffs: Vec<(usize, f64)>,
    /// Relation to the right-hand side.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// Errors raised during problem construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A coefficient, bound, or rhs was NaN or infinite.
    NonFinite,
    /// A constraint or objective referenced a variable index ≥ `n_vars`.
    BadVariable(usize),
    /// The objective vector length did not match the variable count.
    BadObjectiveLen {
        /// Expected length (number of variables).
        expected: usize,
        /// Supplied length.
        got: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::NonFinite => write!(f, "non-finite coefficient, bound, or rhs"),
            LpError::BadVariable(i) => write!(f, "variable index {i} out of range"),
            LpError::BadObjectiveLen { expected, got } => {
                write!(f, "objective length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// A linear program: maximize `c·x` subject to mixed constraints, `x ≥ 0`,
/// and optional per-variable upper bounds.
///
/// Minimization is expressed by negating the objective. The builder methods
/// panic-free validate eagerly via [`Problem::try_add_constraint`] /
/// [`Problem::try_set_objective`]; the plain methods are convenience wrappers
/// that panic on malformed input (appropriate for the schedulers, which
/// construct programs from already-validated data).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Problem {
    n_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    upper_bounds: Vec<Option<f64>>,
}

impl Problem {
    /// Creates a problem over `n_vars` non-negative variables with a zero
    /// objective.
    pub fn new(n_vars: usize) -> Self {
        Problem {
            n_vars,
            objective: vec![0.0; n_vars],
            constraints: Vec::new(),
            upper_bounds: vec![None; n_vars],
        }
    }

    /// Number of structural variables.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints added so far (upper bounds excluded).
    #[inline]
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the maximization objective. Panics on length mismatch or
    /// non-finite coefficients.
    pub fn set_objective(&mut self, c: Vec<f64>) {
        self.try_set_objective(c).expect("invalid objective");
    }

    /// Fallible form of [`Self::set_objective`].
    pub fn try_set_objective(&mut self, c: Vec<f64>) -> Result<(), LpError> {
        if c.len() != self.n_vars {
            return Err(LpError::BadObjectiveLen { expected: self.n_vars, got: c.len() });
        }
        if c.iter().any(|v| !v.is_finite()) {
            return Err(LpError::NonFinite);
        }
        self.objective = c;
        Ok(())
    }

    /// Sets one objective coefficient.
    pub fn set_objective_coeff(&mut self, var: usize, c: f64) {
        assert!(var < self.n_vars, "variable {var} out of range");
        assert!(c.is_finite(), "non-finite objective coefficient");
        self.objective[var] = c;
    }

    /// Adds a constraint. Panics on malformed input.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, rel: Relation, rhs: f64) {
        self.try_add_constraint(coeffs, rel, rhs).expect("invalid constraint");
    }

    /// Fallible form of [`Self::add_constraint`].
    pub fn try_add_constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        rel: Relation,
        rhs: f64,
    ) -> Result<(), LpError> {
        if !rhs.is_finite() {
            return Err(LpError::NonFinite);
        }
        for &(i, a) in &coeffs {
            if i >= self.n_vars {
                return Err(LpError::BadVariable(i));
            }
            if !a.is_finite() {
                return Err(LpError::NonFinite);
            }
        }
        self.constraints.push(Constraint { coeffs, rel, rhs });
        Ok(())
    }

    /// Declares `x_var ≤ bound` (in addition to the implicit `x_var ≥ 0`).
    /// A `None`-like effect (no bound) is the default; calling this twice
    /// keeps the tighter bound.
    pub fn set_upper_bound(&mut self, var: usize, bound: f64) {
        assert!(var < self.n_vars, "variable {var} out of range");
        assert!(bound.is_finite() && bound >= 0.0, "bad upper bound {bound}");
        let b = self.upper_bounds[var].map_or(bound, |old: f64| old.min(bound));
        self.upper_bounds[var] = Some(b);
    }

    /// Replaces the upper bound of `x_var` outright (unlike
    /// [`Self::set_upper_bound`], which keeps the tighter of old and new).
    /// Used by prepared problem skeletons whose bounds change every window.
    pub fn set_upper_bound_exact(&mut self, var: usize, bound: f64) {
        assert!(var < self.n_vars, "variable {var} out of range");
        assert!(bound.is_finite() && bound >= 0.0, "bad upper bound {bound}");
        self.upper_bounds[var] = Some(bound);
    }

    /// Overwrites the right-hand side of constraint `idx` in place. The
    /// constraint's coefficients and relation are untouched — this is the
    /// cheap per-window update path for prepared problem skeletons.
    pub fn set_constraint_rhs(&mut self, idx: usize, rhs: f64) {
        assert!(rhs.is_finite(), "non-finite rhs");
        self.constraints[idx].rhs = rhs;
    }

    /// Overwrites coefficient `slot` (positional, not variable index) of
    /// constraint `row`. The variable the slot refers to stays the same;
    /// only its multiplier changes.
    pub fn set_constraint_coeff(&mut self, row: usize, slot: usize, value: f64) {
        assert!(value.is_finite(), "non-finite coefficient");
        self.constraints[row].coeffs[slot].1 = value;
    }

    /// The objective vector.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The per-variable upper bounds.
    pub fn upper_bounds(&self) -> &[Option<f64>] {
        &self.upper_bounds
    }

    /// Solves the program with the two-phase simplex method (fresh
    /// workspace; see [`Self::solve_with`] to amortize allocations).
    pub fn solve(&self) -> LpOutcome {
        simplex::solve_tableau(self)
    }

    /// Solves through a caller-owned [`SimplexWorkspace`], reusing its
    /// buffers. The returned outcome owns its solution vector.
    pub fn solve_with(&self, ws: &mut SimplexWorkspace) -> LpOutcome {
        simplex::solve_with(self, ws)
    }

    /// Allocation-free solve: on [`LpStatus::Optimal`] the solution is read
    /// from the workspace ([`SimplexWorkspace::x`],
    /// [`SimplexWorkspace::objective_value`]). After the first solve of a
    /// given shape, re-solving same-shaped problems performs no heap
    /// allocation at all.
    pub fn solve_in_place(&self, ws: &mut SimplexWorkspace) -> LpStatus {
        simplex::solve_in_place(self, ws)
    }

    /// Solves with the retained naive reference implementation
    /// ([`crate::reference::solve_reference`]) — the correctness oracle.
    pub fn solve_reference(&self) -> LpOutcome {
        crate::reference::solve_reference(self)
    }

    /// Checks whether `x` satisfies every constraint and bound within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n_vars {
            return false;
        }
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        for (i, ub) in self.upper_bounds.iter().enumerate() {
            if let Some(u) = ub {
                if x[i] > u + tol {
                    return false;
                }
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.coeffs.iter().map(|&(i, a)| a * x[i]).sum();
            let ok = match c.rel {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Evaluates the objective at `x`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        let mut p = Problem::new(2);
        assert!(matches!(
            p.try_set_objective(vec![1.0]),
            Err(LpError::BadObjectiveLen { expected: 2, got: 1 })
        ));
        assert!(matches!(
            p.try_set_objective(vec![1.0, f64::NAN]),
            Err(LpError::NonFinite)
        ));
        assert!(matches!(
            p.try_add_constraint(vec![(5, 1.0)], Relation::Le, 1.0),
            Err(LpError::BadVariable(5))
        ));
        assert!(matches!(
            p.try_add_constraint(vec![(0, 1.0)], Relation::Le, f64::INFINITY),
            Err(LpError::NonFinite)
        ));
    }

    #[test]
    fn upper_bound_keeps_tighter() {
        let mut p = Problem::new(1);
        p.set_upper_bound(0, 5.0);
        p.set_upper_bound(0, 3.0);
        p.set_upper_bound(0, 7.0);
        assert_eq!(p.upper_bounds()[0], Some(3.0));
    }

    #[test]
    fn feasibility_checker() {
        let mut p = Problem::new(2);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 1.0);
        p.set_upper_bound(1, 2.0);
        assert!(p.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!p.is_feasible(&[0.5, 2.0], 1e-9)); // violates Ge
        assert!(!p.is_feasible(&[1.0, 2.5], 1e-9)); // violates ub
        assert!(!p.is_feasible(&[3.0, 2.0], 1e-9)); // violates Le
        assert!(!p.is_feasible(&[-0.1, 0.0], 1e-9)); // violates x >= 0
        assert!(!p.is_feasible(&[1.0], 1e-9)); // wrong arity
    }
}
