//! Two-phase primal simplex on a flat dense tableau.
//!
//! This is the fast path behind [`Problem::solve`]. Four things make it
//! quick on the workspace's per-window LPs:
//!
//! - **Flat storage**: the tableau is one row-major `Vec<f64>` with stride
//!   `ncols + 1`, and pivots combine row pairs via `split_at_mut` — no
//!   per-pivot row clone, no per-row allocations.
//! - **Implicit upper bounds**: variable bounds `x_j ≤ u_j` are handled by
//!   the bounded-variable ratio test (nonbasic variables sit at either
//!   bound; reaching the upper bound is a column flip, not a pivot) instead
//!   of explicit rows. The window LPs bound every one of their `n²`
//!   variables, so this shrinks the tableau by the dominant term — and
//!   variables bounded to zero (no agreement between that principal pair)
//!   drop out of pricing entirely.
//! - **Dantzig pricing with a Bland fallback**: the entering column is the
//!   most positive reduced cost (fast in practice), and after
//!   [`SimplexWorkspace::bland_after`] consecutive non-improving pivots the
//!   solver switches to Bland's smallest-index rule, which provably cannot
//!   cycle. A strict objective improvement resets the streak (and the rule
//!   back to Dantzig); since the objective is non-decreasing and there are
//!   finitely many bases, termination is preserved.
//! - **Workspace reuse**: all buffers live in a [`SimplexWorkspace`];
//!   repeated solves of same-shaped problems perform zero heap allocation
//!   after warm-up (see [`Problem::solve_in_place`]).
//!
//! Bound flips use the textbook substitution `x_j = u_j − x̃_j` (Chvátal's
//! bounded simplex): a flipped column keeps all nonbasic values at zero in
//! the substituted space, so pricing and the ratio test stay uniform.
//!
//! The original `Vec<Vec<f64>>` Bland-only implementation (upper bounds as
//! explicit rows) is retained in [`crate::reference`] as the correctness
//! oracle.

use crate::{Problem, Relation};

/// Numerical tolerance used for pivoting and feasibility classification.
pub const EPS: f64 = 1e-9;

/// Default degeneracy streak (consecutive non-improving pivots) after which
/// pricing falls back from Dantzig to Bland's anti-cycling rule.
pub const DEFAULT_BLAND_AFTER: usize = 16;

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal values of the structural variables.
    pub x: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
}

/// Result of solving a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// A finite optimum was found.
    Optimal(Solution),
    /// No point satisfies the constraints.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The iteration safety cap was hit (cannot happen once the Bland
    /// fallback engages unless the problem is numerically hostile — or the
    /// fallback was disabled via [`SimplexWorkspace::with_bland_after`]).
    Numerical,
}

impl LpOutcome {
    /// Unwraps the optimal solution, panicking otherwise.
    pub fn expect_optimal(self, msg: &str) -> Solution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("{msg}: {other:?}"),
        }
    }

    /// Returns the solution if optimal.
    pub fn optimal(self) -> Option<Solution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// Status of an in-place solve; on `Optimal` the solution is readable from
/// the workspace via [`SimplexWorkspace::x`] and
/// [`SimplexWorkspace::objective_value`] without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// A finite optimum was found (solution left in the workspace).
    Optimal,
    /// No point satisfies the constraints.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// Iteration cap hit (severe numerical trouble or disabled fallback).
    Numerical,
}

/// Reusable buffers and pricing configuration for the simplex solver.
///
/// Create one per scheduler (or per thread) and pass it to
/// [`Problem::solve_with`] / [`Problem::solve_in_place`]; after the first
/// solve of a given shape, subsequent solves of same-shaped problems do not
/// touch the allocator.
#[derive(Debug, Clone)]
pub struct SimplexWorkspace {
    tab: Vec<f64>,            // m rows × stride (ncols + 1, rhs last)
    obj: Vec<f64>,            // stride; last cell = -objective value
    basis: Vec<usize>,        // m
    enterable: Vec<bool>,     // ncols
    is_artificial: Vec<bool>, // ncols
    ub: Vec<f64>,             // ncols; +∞ where unbounded
    flipped: Vec<bool>,       // ncols; column substituted x = u − x̃
    cost: Vec<f64>,           // ncols scratch for install_objective
    x: Vec<f64>,              // n; solution of the last optimal solve
    last_objective: f64,
    bland_after: usize,
    solves: u64,
    pivots: u64,
    bland_pivots: u64,
}

impl Default for SimplexWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SimplexWorkspace {
    /// An empty workspace with default (Dantzig + Bland fallback) pricing.
    pub fn new() -> Self {
        SimplexWorkspace {
            tab: Vec::new(),
            obj: Vec::new(),
            basis: Vec::new(),
            enterable: Vec::new(),
            is_artificial: Vec::new(),
            ub: Vec::new(),
            flipped: Vec::new(),
            cost: Vec::new(),
            x: Vec::new(),
            last_objective: 0.0,
            bland_after: DEFAULT_BLAND_AFTER,
            solves: 0,
            pivots: 0,
            bland_pivots: 0,
        }
    }

    /// Overrides the degeneracy streak that triggers the Bland fallback.
    ///
    /// `0` forces pure Bland (the reference behavior); `usize::MAX`
    /// disables the fallback entirely (pure Dantzig — loses the
    /// anti-cycling guarantee; only useful for tests demonstrating it).
    pub fn with_bland_after(mut self, streak: usize) -> Self {
        self.bland_after = streak;
        self
    }

    /// The configured Bland-fallback degeneracy streak.
    pub fn bland_after(&self) -> usize {
        self.bland_after
    }

    /// Structural-variable values of the last optimal solve.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Objective value of the last optimal solve.
    pub fn objective_value(&self) -> f64 {
        self.last_objective
    }

    /// Total solves performed through this workspace.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Total pivots performed (all pricing rules).
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    /// Pivots performed while the Bland fallback was engaged.
    pub fn bland_pivots(&self) -> u64 {
        self.bland_pivots
    }
}

enum RunResult {
    Optimal,
    Unbounded,
    IterationLimit,
}

/// Subtracts `row[s] × prow` from `row`, zeroing column `s` exactly.
#[inline]
fn eliminate(row: &mut [f64], prow: &[f64], s: usize) {
    let factor = row[s];
    // Exact-zero skip of an untouched coefficient, not a tolerance.
    if factor != 0.0 { // covenant: allow(float-eq)
        for (v, p) in row.iter_mut().zip(prow) {
            *v -= factor * p;
        }
        row[s] = 0.0; // exact zero, fight drift
    }
}

/// One pivot at (row `r`, column `s`) on the flat tableau. The pivot row is
/// borrowed disjointly via `split_at_mut`, so no snapshot copy is needed.
fn pivot(
    tab: &mut [f64],
    obj: &mut [f64],
    basis: &mut [usize],
    stride: usize,
    r: usize,
    s: usize,
) {
    let (head, rest) = tab.split_at_mut(r * stride);
    let (prow, tail) = rest.split_at_mut(stride);
    let piv = prow[s];
    debug_assert!(piv.abs() > EPS, "pivot too small: {piv}");
    let inv = 1.0 / piv;
    for v in prow.iter_mut() {
        *v *= inv;
    }
    for row in head.chunks_exact_mut(stride) {
        eliminate(row, prow, s);
    }
    for row in tail.chunks_exact_mut(stride) {
        eliminate(row, prow, s);
    }
    eliminate(obj, prow, s);
    basis[r] = s;
}

/// Rebuilds the objective row for the cost vector in `ws.cost`, pricing out
/// the current basis. `ws.cost` is in original coordinates; flipped columns
/// (`x = u − x̃`) get a negated cost and contribute `c·u` to the constant.
fn install_objective(ws: &mut SimplexWorkspace, stride: usize) {
    let ncols = stride - 1;
    ws.obj[ncols] = 0.0;
    for j in 0..ncols {
        if ws.flipped[j] {
            ws.obj[j] = -ws.cost[j];
            ws.obj[ncols] -= ws.cost[j] * ws.ub[j];
        } else {
            ws.obj[j] = ws.cost[j];
        }
    }
    for (i, &b) in ws.basis.iter().enumerate() {
        let cb = if ws.flipped[b] { -ws.cost[b] } else { ws.cost[b] };
        // Exact-zero basis-cost skip, not a tolerance.
        if cb != 0.0 { // covenant: allow(float-eq)
            let row = &ws.tab[i * stride..(i + 1) * stride];
            for (v, p) in ws.obj.iter_mut().zip(row) {
                *v -= cb * p;
            }
        }
    }
}

/// Moves nonbasic column `s` to its (finite) upper bound: substitutes
/// `x_s = u_s − x̃_s`, negating the column and charging `u_s` against every
/// row's rhs and the objective constant. No basis change.
fn flip_column(ws: &mut SimplexWorkspace, m: usize, stride: usize, s: usize) {
    let ncols = stride - 1;
    let u = ws.ub[s];
    debug_assert!(u.is_finite());
    for i in 0..m {
        let row = &mut ws.tab[i * stride..(i + 1) * stride];
        let a = row[s];
        // Exact-zero column skip, not a tolerance.
        if a != 0.0 { // covenant: allow(float-eq)
            row[ncols] -= a * u;
            row[s] = -a;
        }
    }
    let rc = ws.obj[s];
    ws.obj[ncols] -= rc * u;
    ws.obj[s] = -rc;
    ws.flipped[s] = !ws.flipped[s];
}

/// Simplex iterations until optimal/unbounded: Dantzig pricing, falling
/// back to Bland's rule after `bland_after` consecutive non-improving
/// pivots, resetting on every strict improvement.
fn run(ws: &mut SimplexWorkspace, m: usize, stride: usize, max_iters: usize) -> RunResult {
    let ncols = stride - 1;
    let mut streak = 0usize;
    for _ in 0..max_iters {
        let bland = streak >= ws.bland_after;
        // Entering column.
        let entering = if bland {
            // Bland: smallest-index improving column.
            (0..ncols).find(|&j| ws.enterable[j] && ws.obj[j] > EPS)
        } else {
            // Dantzig: most positive reduced cost.
            let mut best = None;
            let mut best_cost = EPS;
            for (j, &rc) in ws.obj[..ncols].iter().enumerate() {
                if ws.enterable[j] && rc > best_cost {
                    best_cost = rc;
                    best = Some(j);
                }
            }
            best
        };
        let Some(s) = entering else {
            return RunResult::Optimal;
        };
        // Bounded ratio test: the entering variable rises until a basic
        // variable hits zero (column > 0), a *bounded* basic variable hits
        // its upper bound (column < 0), or the entering variable hits its
        // own upper bound (a bound flip — no pivot). Ties between rows go
        // to the smallest basis index under Bland (required for the
        // anti-cycling guarantee) and to the smallest row index under
        // Dantzig (the classic textbook rule).
        let mut best: Option<(usize, f64, bool)> = None;
        for i in 0..m {
            let a = ws.tab[i * stride + s];
            let (ratio, leaves_at_upper) = if a > EPS {
                (ws.tab[i * stride + ncols] / a, false)
            } else if a < -EPS {
                let bub = ws.ub[ws.basis[i]];
                if !bub.is_finite() {
                    continue;
                }
                ((bub - ws.tab[i * stride + ncols]) / -a, true)
            } else {
                continue;
            };
            match best {
                None => best = Some((i, ratio, leaves_at_upper)),
                Some((bi, br, _)) => {
                    if ratio < br - EPS
                        || (bland && ratio < br + EPS && ws.basis[i] < ws.basis[bi])
                    {
                        best = Some((i, ratio, leaves_at_upper));
                    }
                }
            }
        }
        let before = -ws.obj[ncols];
        let own_ub = ws.ub[s];
        if own_ub.is_finite() && best.is_none_or(|(_, br, _)| own_ub <= br) {
            // The entering variable saturates first: flip it to its upper
            // bound. Strictly improving (rc > EPS, u > EPS), so no streak.
            flip_column(ws, m, stride, s);
            streak = 0;
            continue;
        }
        let Some((r, _, leaves_at_upper)) = best else {
            return RunResult::Unbounded;
        };
        if leaves_at_upper {
            // The leaving basic variable exits at its *upper* bound:
            // substitute it (`x_l = u_l − x̃_l` negates its own unit column
            // and charges `u_l` to the rhs), then negate the whole row so
            // x̃_l is basic at `u_l − b ≥ 0` — leaving at zero in the
            // substituted space — and pivot normally on the now-positive
            // column entry. The two negations cancel on column `l` itself,
            // which stays the exact unit it was.
            let l = ws.basis[r];
            let row = &mut ws.tab[r * stride..(r + 1) * stride];
            row[ncols] -= ws.ub[l];
            for v in row.iter_mut() {
                *v = -*v;
            }
            row[l] = 1.0;
            ws.flipped[l] = !ws.flipped[l];
        }
        pivot(&mut ws.tab, &mut ws.obj, &mut ws.basis, stride, r, s);
        ws.pivots += 1;
        if bland {
            ws.bland_pivots += 1;
        }
        let after = -ws.obj[ncols];
        if after > before + EPS {
            streak = 0;
        } else {
            streak = streak.saturating_add(1);
        }
    }
    RunResult::IterationLimit
}

/// Effective relation of a row once its rhs is normalized non-negative.
#[inline]
fn effective_rel(rel: Relation, rhs: f64) -> Relation {
    if rhs >= 0.0 {
        return rel;
    }
    match rel {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

/// Solves `problem` into `ws`, reusing its buffers. See
/// [`Problem::solve_in_place`].
pub(crate) fn solve_in_place(problem: &Problem, ws: &mut SimplexWorkspace) -> LpStatus {
    ws.solves += 1;
    let n = problem.n_vars();

    // Row census. Upper bounds are handled as column bounds by the ratio
    // test, not as rows, so only the real constraints shape the tableau.
    let m = problem.n_constraints();
    let mut n_slack = 0;
    let mut n_art = 0;
    for c in problem.constraints() {
        match effective_rel(c.rel, c.rhs) {
            Relation::Le => n_slack += 1,
            Relation::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Relation::Eq => n_art += 1,
        }
    }
    let ncols = n + n_slack + n_art;
    let stride = ncols + 1;

    // Size the buffers; `clear` + `resize` keeps capacity, so same-shaped
    // solves allocate nothing after the first.
    ws.tab.clear();
    ws.tab.resize(m * stride, 0.0);
    ws.obj.clear();
    ws.obj.resize(stride, 0.0);
    ws.basis.clear();
    ws.basis.resize(m, usize::MAX);
    ws.enterable.clear();
    ws.enterable.resize(ncols, true);
    ws.is_artificial.clear();
    ws.is_artificial.resize(ncols, false);
    ws.ub.clear();
    ws.ub.resize(ncols, f64::INFINITY);
    ws.flipped.clear();
    ws.flipped.resize(ncols, false);
    ws.cost.clear();
    ws.cost.resize(ncols, 0.0);
    for (j, ub) in problem.upper_bounds().iter().enumerate() {
        if let Some(u) = ub {
            let u = u.max(0.0);
            ws.ub[j] = u;
            if u <= EPS {
                // Fixed at zero: never enters, never flips.
                ws.enterable[j] = false;
            }
        }
    }

    // Fill rows. Column layout: [0, n) structural | slacks | artificials.
    let mut slack_at = n;
    let mut art_at = n + n_slack;
    let mut fill = |ws: &mut SimplexWorkspace, i: usize, rel: Relation| match rel {
        Relation::Le => {
            ws.tab[i * stride + slack_at] = 1.0;
            ws.basis[i] = slack_at;
            slack_at += 1;
        }
        Relation::Ge => {
            ws.tab[i * stride + slack_at] = -1.0;
            slack_at += 1;
            ws.tab[i * stride + art_at] = 1.0;
            ws.is_artificial[art_at] = true;
            ws.basis[i] = art_at;
            art_at += 1;
        }
        Relation::Eq => {
            ws.tab[i * stride + art_at] = 1.0;
            ws.is_artificial[art_at] = true;
            ws.basis[i] = art_at;
            art_at += 1;
        }
    };
    for (i, c) in problem.constraints().iter().enumerate() {
        let sign = if c.rhs < 0.0 { -1.0 } else { 1.0 };
        let row = &mut ws.tab[i * stride..(i + 1) * stride];
        for &(j, v) in &c.coeffs {
            row[j] += sign * v;
        }
        row[ncols] = sign * c.rhs;
        fill(ws, i, effective_rel(c.rel, c.rhs));
    }

    let max_iters = 200 * (m + ncols + 16);

    // Phase 1: maximize -(sum of artificials); optimum 0 iff feasible.
    if n_art > 0 {
        for j in 0..ncols {
            ws.cost[j] = if ws.is_artificial[j] { -1.0 } else { 0.0 };
        }
        install_objective(ws, stride);
        match run(ws, m, stride, max_iters) {
            RunResult::Optimal => {}
            // Unbounded cannot happen: the objective is bounded above by 0.
            RunResult::Unbounded | RunResult::IterationLimit => return LpStatus::Numerical,
        }
        let phase1_value = -ws.obj[ncols];
        if phase1_value < -1e-7 {
            return LpStatus::Infeasible;
        }
        // Drive any still-basic artificials out of the basis.
        for r in 0..m {
            if ws.is_artificial[ws.basis[r]] {
                if let Some(s) = (0..ncols)
                    .find(|&j| !ws.is_artificial[j] && ws.tab[r * stride + j].abs() > EPS)
                {
                    pivot(&mut ws.tab, &mut ws.obj, &mut ws.basis, stride, r, s);
                    ws.pivots += 1;
                }
                // If no pivot column exists the row is redundant (all-zero in
                // structural/slack space); the artificial stays basic at
                // value 0 and is harmless because it cannot re-enter.
            }
        }
        for j in 0..ncols {
            if ws.is_artificial[j] {
                ws.enterable[j] = false;
            }
        }
    }

    // Phase 2: the real objective.
    for j in 0..ncols {
        ws.cost[j] = if j < n { problem.objective()[j] } else { 0.0 };
    }
    install_objective(ws, stride);
    match run(ws, m, stride, max_iters) {
        RunResult::Optimal => {
            ws.x.clear();
            ws.x.resize(n, 0.0);
            for j in 0..n {
                if ws.flipped[j] {
                    ws.x[j] = ws.ub[j]; // nonbasic at its upper bound
                }
            }
            for r in 0..m {
                let b = ws.basis[r];
                if b < n {
                    let v = ws.tab[r * stride + ncols].max(0.0);
                    ws.x[b] = if ws.flipped[b] { (ws.ub[b] - v).max(0.0) } else { v };
                }
            }
            ws.last_objective = problem.objective_at(&ws.x);
            LpStatus::Optimal
        }
        RunResult::Unbounded => LpStatus::Unbounded,
        RunResult::IterationLimit => LpStatus::Numerical,
    }
}

/// Solves `problem` through `ws`, returning an owning [`LpOutcome`].
pub(crate) fn solve_with(problem: &Problem, ws: &mut SimplexWorkspace) -> LpOutcome {
    match solve_in_place(problem, ws) {
        LpStatus::Optimal => LpOutcome::Optimal(Solution {
            x: ws.x.clone(),
            objective: ws.last_objective,
        }),
        LpStatus::Infeasible => LpOutcome::Infeasible,
        LpStatus::Unbounded => LpOutcome::Unbounded,
        LpStatus::Numerical => LpOutcome::Numerical,
    }
}

/// Solves `problem` with a throwaway workspace.
pub(crate) fn solve_tableau(problem: &Problem) -> LpOutcome {
    solve_with(problem, &mut SimplexWorkspace::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation};

    fn optimal(p: &Problem) -> Solution {
        let s = p.solve().expect_optimal("expected optimal");
        // Cross-check every unit-test case against the retained oracle.
        let r = crate::reference::solve_reference(p).expect_optimal("oracle optimal");
        assert!(
            (s.objective - r.objective).abs() < 1e-6,
            "fast {} vs oracle {}",
            s.objective,
            r.objective
        );
        s
    }

    #[test]
    fn basic_two_var_max() {
        // max 3x + 2y st x+y<=4, x+3y<=6 -> x=4, y=0, z=12.
        let mut p = Problem::new(2);
        p.set_objective(vec![3.0, 2.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(0, 1.0), (1, 3.0)], Relation::Le, 6.0);
        let s = optimal(&p);
        assert!((s.objective - 12.0).abs() < 1e-9);
        assert!((s.x[0] - 4.0).abs() < 1e-9);
        assert!(s.x[1].abs() < 1e-9);
    }

    #[test]
    fn interior_optimum() {
        // max x + y st x + 2y <= 4, 4x + 2y <= 12 -> x=8/3, y=2/3, z=10/3.
        let mut p = Problem::new(2);
        p.set_objective(vec![1.0, 1.0]);
        p.add_constraint(vec![(0, 1.0), (1, 2.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(0, 4.0), (1, 2.0)], Relation::Le, 12.0);
        let s = optimal(&p);
        assert!((s.objective - 10.0 / 3.0).abs() < 1e-9);
        assert!((s.x[0] - 8.0 / 3.0).abs() < 1e-9);
        assert!((s.x[1] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ge_and_eq_constraints() {
        // min x + y st x + y >= 2, x = 0.5  ->  max -(x+y): x=0.5, y=1.5.
        let mut p = Problem::new(2);
        p.set_objective(vec![-1.0, -1.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 2.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Eq, 0.5);
        let s = optimal(&p);
        assert!((s.objective + 2.0).abs() < 1e-9);
        assert!((s.x[0] - 0.5).abs() < 1e-9);
        assert!((s.x[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x - y <= -1 with x,y>=0: i.e. y >= x + 1. max x st also y <= 3.
        let mut p = Problem::new(2);
        p.set_objective(vec![1.0, 0.0]);
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], Relation::Le, -1.0);
        p.set_upper_bound(1, 3.0);
        let s = optimal(&p);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(1);
        p.set_objective(vec![1.0]);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 5.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 3.0);
        assert_eq!(p.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn contradictory_equalities_infeasible() {
        let mut p = Problem::new(2);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
        p.add_constraint(vec![(0, 2.0), (1, 2.0)], Relation::Eq, 3.0);
        assert_eq!(p.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(2);
        p.set_objective(vec![1.0, 0.0]);
        p.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
        assert_eq!(p.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn bounded_by_upper_bounds_only() {
        let mut p = Problem::new(3);
        p.set_objective(vec![1.0, 2.0, 3.0]);
        p.set_upper_bound(0, 1.0);
        p.set_upper_bound(1, 2.0);
        p.set_upper_bound(2, 3.0);
        let s = optimal(&p);
        assert!((s.objective - 14.0).abs() < 1e-9);
        assert_eq!(s.x, vec![1.0, 2.0, 3.0]);
    }

    fn beale() -> Problem {
        // Beale's classic cycling example: degenerate at the origin, cycles
        // under pure Dantzig pricing with textbook tie-breaking.
        // max 0.75x1 - 150x2 + 0.02x3 - 6x4
        // st   0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
        //      0.5x1 - 90x2 - 0.02x3 + 3x4 <= 0
        //      x3 <= 1
        let mut p = Problem::new(4);
        p.set_objective(vec![0.75, -150.0, 0.02, -6.0]);
        p.add_constraint(
            vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(vec![(2, 1.0)], Relation::Le, 1.0);
        p
    }

    #[test]
    fn degenerate_does_not_cycle() {
        let s = optimal(&beale());
        assert!((s.objective - 0.05).abs() < 1e-9, "objective {}", s.objective);
    }

    #[test]
    fn bland_fallback_engages_on_degenerate_streaks() {
        // With an immediate fallback the solver behaves like pure Bland and
        // must record its pivots as Bland pivots.
        let mut ws = SimplexWorkspace::new().with_bland_after(0);
        let out = beale().solve_with(&mut ws);
        let s = out.expect_optimal("beale under pure Bland");
        assert!((s.objective - 0.05).abs() < 1e-9);
        assert_eq!(ws.pivots(), ws.bland_pivots());
        assert!(ws.pivots() > 0);
    }

    #[test]
    fn pure_dantzig_cycles_but_fallback_terminates() {
        // Regression guard for the anti-cycling design: with the fallback
        // disabled, pure Dantzig pricing cycles on Beale's example until the
        // iteration cap trips; the default streak threshold switches to
        // Bland's rule and reaches the optimum in a handful of pivots.
        let mut pure = SimplexWorkspace::new().with_bland_after(usize::MAX);
        assert_eq!(beale().solve_with(&mut pure), LpOutcome::Numerical);
        let mut ws = SimplexWorkspace::new();
        let s = beale().solve_with(&mut ws).expect_optimal("fallback terminates");
        assert!((s.objective - 0.05).abs() < 1e-9);
        assert!(ws.bland_pivots() > 0, "fallback never engaged");
        assert!(ws.pivots() < pure.pivots());
    }

    #[test]
    fn workspace_reuse_is_deterministic_across_shapes() {
        // One workspace, alternating problem shapes — results must match
        // fresh-workspace solves exactly.
        let mut ws = SimplexWorkspace::new();
        let p1 = beale();
        let mut p2 = Problem::new(2);
        p2.set_objective(vec![3.0, 2.0]);
        p2.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        for _ in 0..3 {
            let a = p1.solve_with(&mut ws);
            let b = p1.solve();
            assert_eq!(a, b);
            let a = p2.solve_with(&mut ws);
            let b = p2.solve();
            assert_eq!(a, b);
        }
        assert_eq!(ws.solves(), 6);
    }

    #[test]
    fn solve_in_place_exposes_solution_without_outcome() {
        let mut ws = SimplexWorkspace::new();
        let mut p = Problem::new(2);
        p.set_objective(vec![3.0, 2.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        assert_eq!(p.solve_in_place(&mut ws), LpStatus::Optimal);
        assert!((ws.objective_value() - 12.0).abs() < 1e-9);
        assert!((ws.x()[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_equality_rows() {
        // Duplicate equalities should not confuse phase 1.
        let mut p = Problem::new(2);
        p.set_objective(vec![1.0, 1.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(vec![(0, 2.0), (1, 2.0)], Relation::Eq, 4.0);
        let s = optimal(&p);
        assert!((s.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_variable_problem() {
        let p = Problem::new(0);
        let s = optimal(&p);
        assert_eq!(s.x.len(), 0);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn zero_variable_infeasible() {
        let mut p = Problem::new(0);
        p.add_constraint(vec![], Relation::Ge, 1.0);
        assert_eq!(p.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn duplicate_coefficients_are_summed() {
        // (0,1.0) twice means coefficient 2.
        let mut p = Problem::new(1);
        p.set_objective(vec![1.0]);
        p.add_constraint(vec![(0, 1.0), (0, 1.0)], Relation::Le, 4.0);
        let s = optimal(&p);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn community_theta_shape() {
        // A miniature of the paper's community LP: maximize theta with
        // x_a >= theta*n_a, x_b >= theta*n_b, x_a + x_b <= V.
        // vars: [theta, x_a, x_b], n_a = 40, n_b = 20, V = 30.
        let mut p = Problem::new(3);
        p.set_objective(vec![1.0, 0.0, 0.0]);
        p.add_constraint(vec![(1, 1.0), (0, -40.0)], Relation::Ge, 0.0);
        p.add_constraint(vec![(2, 1.0), (0, -20.0)], Relation::Ge, 0.0);
        p.add_constraint(vec![(1, 1.0), (2, 1.0)], Relation::Le, 30.0);
        p.set_upper_bound(1, 40.0);
        p.set_upper_bound(2, 20.0);
        let s = optimal(&p);
        // theta = 30/60 = 0.5 -> x_a = 20, x_b = 10.
        assert!((s.x[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn solver_is_deterministic() {
        let mut p = Problem::new(3);
        p.set_objective(vec![1.0, 1.0, 1.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 10.0);
        p.add_constraint(vec![(0, 2.0), (1, 1.0)], Relation::Le, 8.0);
        let a = optimal(&p);
        let b = optimal(&p);
        assert_eq!(a, b);
    }
}
