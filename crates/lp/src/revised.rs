//! Sparse revised simplex with a warm-started dual phase.
//!
//! The dense tableau in [`crate::simplex`] is the right tool for a few
//! dozen principals, but the window LPs grow as `n² + 1` variables: at
//! n = 1024 a dense tableau would need tens of gigabytes. This module is
//! the large-`n` engine behind `Problem::solve_warm`:
//!
//! - **Sparse problem columns.** The flow matrices of the window LPs are
//!   mostly zeros (a principal has agreements with a handful of peers), so
//!   constraint columns are stored once per prepared shape in compressed
//!   sparse column form. Slack columns are implicit unit columns. Variables
//!   fixed at zero (no agreement between a pair) never enter pricing: the
//!   solver iterates an *active* column list of size `O(nnz)`, not `O(n²)`.
//! - **Product-form basis inverse.** The basis inverse is an eta file
//!   (elementary column transforms) grown by one eta per pivot and rebuilt
//!   from the identity slack basis every `refactor_after` pivots — the
//!   classic refactorize-every-k discipline. Replacing a single basic
//!   column (the θ coefficient changes with every window's queue lengths)
//!   is a rank-one update: one FTRAN plus one appended eta.
//! - **Warm-started dual simplex.** Consecutive windows differ only in
//!   queue-derived right-hand sides and bounds, so the previous window's
//!   optimal basis stays *dual* feasible. [`WarmBasis`] persists the basis,
//!   bound statuses, and eta file across solves; `solve_warm` repairs
//!   primal feasibility with dual simplex pivots — typically a handful —
//!   instead of re-solving from scratch. A cold solve is the same dual
//!   simplex started from the all-slack basis (trivially dual feasible for
//!   the scheduler LPs, whose positive-cost variables are all boxed).
//!
//! The engine refuses problems it cannot start dual-feasible (a variable
//! with positive cost and no upper bound) or that misbehave numerically,
//! returning [`WarmOutcome::Unsuitable`]; callers fall back to the dense
//! solver. Every optimal claim is verified against the problem's own
//! feasibility checker before being returned.

use crate::{Problem, Relation};

/// Dual-feasibility tolerance on reduced costs.
const DTOL: f64 = 1e-7;
/// Primal-feasibility tolerance on basic-variable bound violations.
const PTOL: f64 = 1e-7;
/// Smallest acceptable pivot magnitude.
const PIV_TOL: f64 = 1e-8;
/// Entries below this are dropped when storing an eta column.
const ETA_DROP: f64 = 1e-12;
/// Tolerance used when verifying a claimed optimum against the problem.
const VERIFY_TOL: f64 = 1e-5;
/// Consecutive degenerate (no dual-objective progress) pivots before the
/// anti-cycling rule (smallest-index leaving row and entering column)
/// engages; any strict progress resets both the streak and the rule.
const BLAND_AFTER: usize = 24;
/// A true-objective reduced cost below this is treated as exactly zero
/// when walking the optimal face: the column is free to enter without
/// moving the objective. Sits well above BTRAN noise (~1e-13) and well
/// below genuinely binding reduced costs (≥ DTOL).
const FACE_TOL: f64 = 1e-9;
/// Minimum tie-break-objective improvement worth a canonicalization pivot.
const WTOL: f64 = 1e-9;

/// Result of a warm (or cold) revised-simplex solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmOutcome {
    /// A verified finite optimum; read it from [`WarmBasis::x`] and
    /// [`WarmBasis::objective_value`].
    Optimal,
    /// No point satisfies the constraints (confirmed by a cold restart).
    Infeasible,
    /// The engine cannot handle this problem (dual-infeasible start,
    /// singular basis, or persistent numerical trouble): the caller should
    /// use the dense solver.
    Unsuitable,
}

/// Lifetime counters of one [`WarmBasis`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Total solves routed through this handle.
    pub solves: u64,
    /// Solves that reused the previous optimal basis (warm starts).
    pub warm_solves: u64,
    /// Solves that restarted from the all-slack basis (first solve, shape
    /// change, or recovery from numerical trouble).
    pub cold_starts: u64,
    /// Dual simplex pivots performed.
    pub pivots: u64,
    /// Basis rebuilds (scheduled refactorizations plus recoveries).
    pub refactorizations: u64,
}

/// Where a column currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CStat {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Fixed (equal bounds — zero-width box); never enters.
    Fixed,
}

const NOT_BASIC: u32 = u32::MAX;

/// Persistent warm-start state for one prepared problem shape: the sparse
/// column store, the current basis with its eta-file inverse, and per-column
/// bound statuses. Create once per prepared skeleton and pass to
/// [`Problem::solve_warm`] every window; the handle detects shape changes
/// and rebuilds itself (a cold start) automatically.
#[derive(Debug, Clone, Default)]
pub struct WarmBasis {
    // ---- shape ----
    /// Structural variable count of the bound shape.
    n_vars: usize,
    /// Constraint rows of the bound shape.
    m: usize,
    /// Pattern fingerprint of the bound shape (0 = unbound).
    shape: u64,

    // ---- sparse column store (structural columns; slacks implicit) ----
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    col_val: Vec<f64>,
    /// Maps the problem's sequential (row, coefficient-slot) order to the
    /// CSC value slot, so per-window value sync is one linear pass.
    fill_perm: Vec<usize>,

    // ---- per-column data (structural then slacks) ----
    lower: Vec<f64>,
    upper: Vec<f64>,
    cost: Vec<f64>,
    status: Vec<CStat>,
    /// Non-fixed columns — the only ones pricing ever visits.
    active: Vec<u32>,
    /// Reduced costs (maintained for active columns).
    d: Vec<f64>,

    // ---- basis ----
    basis: Vec<u32>,
    pos_in_basis: Vec<u32>,
    x_basic: Vec<f64>,
    rhs: Vec<f64>,

    // ---- eta file (product-form inverse) ----
    eta_slot: Vec<u32>,
    eta_pivot: Vec<f64>,
    eta_start: Vec<usize>,
    eta_row: Vec<u32>,
    eta_val: Vec<f64>,
    refactor_after: usize,
    /// Eta-file length right after the last rebuild: a refactorization
    /// seeds one eta per structural basic, so the every-k cadence must
    /// count only etas appended *since* then — comparing the raw length
    /// against `refactor_after` would re-trigger immediately whenever the
    /// basis holds more structurals than the cadence allows.
    eta_baseline: usize,

    // ---- scratch ----
    work: Vec<f64>,
    rho: Vec<f64>,
    rho2: Vec<f64>,
    alpha: Vec<f64>,
    x_out: Vec<f64>,
    objective: f64,

    // ---- counters ----
    stats: WarmStats,
}

enum LoopResult {
    Optimal,
    Infeasible,
    Trouble,
}

impl WarmBasis {
    /// An unbound handle; the first [`Problem::solve_warm`] binds it to the
    /// problem's shape with a cold start.
    pub fn new() -> Self {
        Self::default()
    }

    /// Structural-variable values of the last optimal solve.
    pub fn x(&self) -> &[f64] {
        &self.x_out
    }

    /// Objective value of the last optimal solve.
    pub fn objective_value(&self) -> f64 {
        self.objective
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WarmStats {
        self.stats
    }

    /// True when the handle currently holds a reusable basis for the last
    /// bound shape.
    pub fn is_warm(&self) -> bool {
        self.shape != 0 && !self.basis.is_empty()
    }

    fn slack_col(&self, row: usize) -> usize {
        self.n_vars + row
    }

    fn ncols(&self) -> usize {
        self.n_vars + self.m
    }

    /// FNV-1a over everything that determines the constraint pattern:
    /// variable count, row count, relations, and coefficient variable ids.
    fn pattern_fingerprint(problem: &Problem) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(problem.n_vars() as u64);
        eat(problem.n_constraints() as u64);
        for c in problem.constraints() {
            eat(match c.rel {
                Relation::Le => 1,
                Relation::Ge => 2,
                Relation::Eq => 3,
            });
            eat(c.coeffs.len() as u64);
            for &(j, _) in &c.coeffs {
                eat(j as u64);
            }
        }
        h | 1 // never 0, which means "unbound"
    }

    /// Builds the CSC store and per-column tables for a new shape.
    fn rebuild_store(&mut self, problem: &Problem) {
        let n = problem.n_vars();
        let m = problem.n_constraints();
        self.n_vars = n;
        self.m = m;
        let ncols = n + m;

        // Column counts, then prefix sums.
        self.col_ptr.clear();
        self.col_ptr.resize(n + 1, 0);
        for c in problem.constraints() {
            for &(j, _) in &c.coeffs {
                self.col_ptr[j + 1] += 1;
            }
        }
        for j in 0..n {
            self.col_ptr[j + 1] += self.col_ptr[j];
        }
        let nnz = self.col_ptr[n];
        self.row_idx.clear();
        self.row_idx.resize(nnz, 0);
        self.col_val.clear();
        self.col_val.resize(nnz, 0.0);
        self.fill_perm.clear();
        self.fill_perm.resize(nnz, 0);
        let mut cursor: Vec<usize> = self.col_ptr[..n].to_vec();
        let mut seq = 0usize;
        for (i, c) in problem.constraints().iter().enumerate() {
            for &(j, v) in &c.coeffs {
                let at = cursor[j];
                cursor[j] += 1;
                self.row_idx[at] = i as u32;
                self.col_val[at] = v;
                self.fill_perm[seq] = at;
                seq += 1;
            }
        }

        self.lower.clear();
        self.lower.resize(ncols, 0.0);
        self.upper.clear();
        self.upper.resize(ncols, f64::INFINITY);
        self.cost.clear();
        self.cost.resize(ncols, 0.0);
        self.status.clear();
        self.status.resize(ncols, CStat::AtLower);
        self.d.clear();
        self.d.resize(ncols, 0.0);
        self.pos_in_basis.clear();
        self.pos_in_basis.resize(ncols, NOT_BASIC);
        self.rhs.clear();
        self.rhs.resize(m, 0.0);
        for (i, c) in problem.constraints().iter().enumerate() {
            let s = self.slack_col(i);
            match c.rel {
                Relation::Le => {
                    self.lower[s] = 0.0;
                    self.upper[s] = f64::INFINITY;
                }
                Relation::Ge => {
                    self.lower[s] = f64::NEG_INFINITY;
                    self.upper[s] = 0.0;
                }
                Relation::Eq => {
                    self.lower[s] = 0.0;
                    self.upper[s] = 0.0;
                }
            }
        }
        self.work.clear();
        self.work.resize(m, 0.0);
        self.rho.clear();
        self.rho.resize(m, 0.0);
        self.rho2.clear();
        self.rho2.resize(m, 0.0);
        self.alpha.clear();
        self.alpha.resize(ncols, 0.0);
        self.basis.clear();
        self.x_basic.clear();
        self.eta_clear();
        // Refactorization cadence: often enough that FTRAN/BTRAN stay
        // cheap, rarely enough that rebuild cost amortizes.
        self.refactor_after = 96 + m / 8;
        self.shape = Self::pattern_fingerprint(problem);
    }

    /// Syncs mutable problem data (coefficient values, bounds, rhs,
    /// objective) into the store. Returns the basis slots whose columns
    /// changed value, or `None` if the handle must cold start anyway.
    fn sync_values(&mut self, problem: &Problem) -> Vec<u32> {
        let mut changed_slots: Vec<u32> = Vec::new();
        let mut seq = 0usize;
        for c in problem.constraints() {
            for &(j, v) in &c.coeffs {
                let at = self.fill_perm[seq];
                seq += 1;
                if self.col_val[at].to_bits() != v.to_bits() {
                    self.col_val[at] = v;
                    let p = self.pos_in_basis[j];
                    if p != NOT_BASIC && !changed_slots.contains(&p) {
                        changed_slots.push(p);
                    }
                }
            }
        }
        for (i, c) in problem.constraints().iter().enumerate() {
            self.rhs[i] = c.rhs;
        }
        for (j, ub) in problem.upper_bounds().iter().enumerate() {
            self.upper[j] = match ub {
                Some(u) => u.max(0.0),
                None => f64::INFINITY,
            };
        }
        for (j, &c) in problem.objective().iter().enumerate() {
            self.cost[j] = c;
        }
        changed_slots
    }

    /// Rebuilds the active-column list (everything not fixed to a
    /// zero-width box).
    fn rebuild_active(&mut self) {
        self.active.clear();
        for j in 0..self.ncols() {
            if self.upper[j] - self.lower[j] > PTOL {
                self.active.push(j as u32);
            } else if self.pos_in_basis[j] == NOT_BASIC {
                self.status[j] = CStat::Fixed;
            }
        }
    }

    // ---- eta file ----

    fn eta_clear(&mut self) {
        self.eta_baseline = 0;
        self.eta_slot.clear();
        self.eta_pivot.clear();
        self.eta_start.clear();
        self.eta_start.push(0);
        self.eta_row.clear();
        self.eta_val.clear();
    }

    fn eta_count(&self) -> usize {
        self.eta_slot.len()
    }

    /// Appends the eta for pivoting column `w` (dense, length m) into slot
    /// `p`. `w[p]` is the pivot element.
    fn eta_push(&mut self, p: usize, w: &[f64]) {
        self.eta_slot.push(p as u32);
        self.eta_pivot.push(w[p]);
        for (i, &v) in w.iter().enumerate() {
            if i != p && v.abs() > ETA_DROP {
                self.eta_row.push(i as u32);
                self.eta_val.push(v);
            }
        }
        self.eta_start.push(self.eta_row.len());
    }

    /// Applies the basis inverse: `v ← B⁻¹ v` (forward transform).
    fn ftran(&self, v: &mut [f64]) {
        for k in 0..self.eta_count() {
            let p = self.eta_slot[k] as usize;
            let t = v[p] / self.eta_pivot[k];
            // Exact-zero skip of an untouched pivot entry, not a tolerance.
            if t != 0.0 { // covenant: allow(float-eq)
                for at in self.eta_start[k]..self.eta_start[k + 1] {
                    v[self.eta_row[at] as usize] -= self.eta_val[at] * t;
                }
            }
            v[p] = t;
        }
    }

    /// Applies the transposed inverse: `v ← B⁻ᵀ v` (backward transform).
    fn btran(&self, v: &mut [f64]) {
        for k in (0..self.eta_count()).rev() {
            let p = self.eta_slot[k] as usize;
            let mut s = v[p];
            for at in self.eta_start[k]..self.eta_start[k + 1] {
                s -= self.eta_val[at] * v[self.eta_row[at] as usize];
            }
            v[p] = s / self.eta_pivot[k];
        }
    }

    /// Scatters column `j` (structural or slack) into dense `out`
    /// (zeroed first).
    fn scatter_column(&self, j: usize, out: &mut [f64]) {
        for v in out.iter_mut() {
            *v = 0.0;
        }
        if j < self.n_vars {
            for at in self.col_ptr[j]..self.col_ptr[j + 1] {
                out[self.row_idx[at] as usize] += self.col_val[at];
            }
        } else {
            out[j - self.n_vars] = 1.0;
        }
    }

    /// `ρ · A_j` without materializing the column.
    fn dot_column(&self, j: usize, rho: &[f64]) -> f64 {
        if j < self.n_vars {
            let mut s = 0.0;
            for at in self.col_ptr[j]..self.col_ptr[j + 1] {
                s += self.col_val[at] * rho[self.row_idx[at] as usize];
            }
            s
        } else {
            rho[j - self.n_vars]
        }
    }

    /// Rebuilds the eta file from the identity (slack) basis by pivoting in
    /// every non-slack basic column. Fails on a (numerically) singular
    /// basis.
    fn refactorize(&mut self) -> Result<(), ()> {
        self.stats.refactorizations += 1;
        self.eta_clear();
        let m = self.m;
        // Slot assignment restarts: basic slacks claim their own rows; the
        // remaining rows are free for the structural basics.
        let mut free: Vec<bool> = vec![true; m];
        let mut cols: Vec<u32> = Vec::new();
        for &c in &self.basis {
            let j = c as usize;
            if j >= self.n_vars {
                free[j - self.n_vars] = false;
            } else {
                cols.push(c);
            }
        }
        // Sparsest columns first keeps eta fill-in low.
        cols.sort_by_key(|&c| {
            let j = c as usize;
            (self.col_ptr[j + 1] - self.col_ptr[j], c)
        });
        let mut new_basis: Vec<u32> = (0..m).map(|r| self.slack_col(r) as u32).collect();
        for &c in &cols {
            let j = c as usize;
            let mut w = std::mem::take(&mut self.work);
            self.scatter_column(j, &mut w);
            self.ftran(&mut w);
            let mut best = usize::MAX;
            let mut best_abs = PIV_TOL;
            for (r, ok) in free.iter().enumerate() {
                if *ok && w[r].abs() > best_abs {
                    best_abs = w[r].abs();
                    best = r;
                }
            }
            if best == usize::MAX {
                self.work = w;
                return Err(());
            }
            self.eta_push(best, &w);
            free[best] = false;
            new_basis[best] = c;
            self.work = w;
        }
        self.basis = new_basis;
        for p in self.pos_in_basis.iter_mut() {
            *p = NOT_BASIC;
        }
        for (r, &c) in self.basis.iter().enumerate() {
            self.pos_in_basis[c as usize] = r as u32;
        }
        self.eta_baseline = self.eta_count();
        Ok(())
    }

    /// The value a nonbasic column currently sits at.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            CStat::AtUpper => self.upper[j],
            CStat::Basic => unreachable!("nonbasic_value on basic column"),
            _ => {
                if self.lower[j].is_finite() {
                    self.lower[j]
                } else {
                    0.0
                }
            }
        }
    }

    /// Recomputes basic values `x_B = B⁻¹ (b − N x_N)`.
    fn compute_x_basic(&mut self) {
        let mut w = std::mem::take(&mut self.work);
        w.copy_from_slice(&self.rhs);
        for k in 0..self.active.len() {
            let j = self.active[k] as usize;
            if self.pos_in_basis[j] != NOT_BASIC {
                continue;
            }
            let v = self.nonbasic_value(j);
            // Exact-zero value skip (most nonbasics sit at zero).
            if v != 0.0 { // covenant: allow(float-eq)
                if j < self.n_vars {
                    for at in self.col_ptr[j]..self.col_ptr[j + 1] {
                        w[self.row_idx[at] as usize] -= self.col_val[at] * v;
                    }
                } else {
                    w[j - self.n_vars] -= v;
                }
            }
        }
        self.ftran(&mut w);
        self.x_basic.clear();
        self.x_basic.extend_from_slice(&w);
        self.work = w;
    }

    /// Recomputes reduced costs `d_j = c_j − y·A_j`, `y = B⁻ᵀ c_B`, for
    /// every active column.
    fn compute_reduced_costs(&mut self) {
        let mut y = std::mem::take(&mut self.rho);
        for (r, v) in y.iter_mut().enumerate() {
            *v = self.cost[self.basis[r] as usize];
        }
        self.btran(&mut y);
        for k in 0..self.active.len() {
            let j = self.active[k] as usize;
            self.d[j] = if self.pos_in_basis[j] != NOT_BASIC {
                0.0
            } else {
                self.cost[j] - self.dot_column(j, &y)
            };
        }
        self.rho = y;
    }

    /// Makes every nonbasic active column dual feasible, flipping to the
    /// opposite bound where the reduced-cost sign demands it. Fails when a
    /// flip target is unbounded (the dense solver must take over).
    fn repair_statuses(&mut self) -> Result<(), ()> {
        for k in 0..self.active.len() {
            let j = self.active[k] as usize;
            if self.pos_in_basis[j] != NOT_BASIC {
                self.status[j] = CStat::Basic;
                continue;
            }
            // A previously fixed column whose box re-opened re-enters the
            // nonbasic pool at a bound chosen by its reduced cost below.
            let mut st = self.status[j];
            if st == CStat::Basic || st == CStat::Fixed {
                st = CStat::AtLower;
            }
            // Never park on an infinite bound.
            if st == CStat::AtUpper && !self.upper[j].is_finite() {
                st = CStat::AtLower;
            }
            if st == CStat::AtLower && !self.lower[j].is_finite() {
                st = CStat::AtUpper;
            }
            let d = self.d[j];
            if st == CStat::AtLower && d > DTOL {
                if self.upper[j].is_finite() {
                    st = CStat::AtUpper;
                } else {
                    return Err(());
                }
            } else if st == CStat::AtUpper && d < -DTOL {
                if self.lower[j].is_finite() {
                    st = CStat::AtLower;
                } else {
                    return Err(());
                }
            }
            if !(match st {
                CStat::AtLower => self.lower[j].is_finite(),
                CStat::AtUpper => self.upper[j].is_finite(),
                _ => true,
            }) {
                return Err(());
            }
            self.status[j] = st;
        }
        Ok(())
    }

    /// Resets to the all-slack basis with statuses chosen by cost sign.
    fn reset_to_slack_basis(&mut self) -> Result<(), ()> {
        self.stats.cold_starts += 1;
        self.eta_clear();
        self.basis.clear();
        for r in 0..self.m {
            self.basis.push(self.slack_col(r) as u32);
        }
        for p in self.pos_in_basis.iter_mut() {
            *p = NOT_BASIC;
        }
        for (r, &c) in self.basis.iter().enumerate() {
            self.pos_in_basis[c as usize] = r as u32;
        }
        for k in 0..self.active.len() {
            let j = self.active[k] as usize;
            if self.pos_in_basis[j] != NOT_BASIC {
                self.status[j] = CStat::Basic;
                continue;
            }
            // y = 0 ⇒ d_j = c_j: positive costs must start at a finite
            // upper bound, everything else at the (finite) lower bound.
            self.status[j] = if self.cost[j] > DTOL {
                if !self.upper[j].is_finite() {
                    return Err(());
                }
                CStat::AtUpper
            } else if self.lower[j].is_finite() {
                CStat::AtLower
            } else if self.upper[j].is_finite() {
                CStat::AtUpper
            } else {
                return Err(());
            };
            self.d[j] = self.cost[j];
        }
        Ok(())
    }

    /// The dual simplex loop: repair primal feasibility while preserving
    /// dual feasibility. Assumes `x_basic` and `d` are current.
    fn dual_simplex(&mut self) -> LoopResult {
        let m = self.m;
        let max_iters = 200 + 12 * (m + self.active.len());
        let mut streak = 0usize;
        let mut refactored_here = false;
        for _ in 0..max_iters {
            if self.eta_count() > self.eta_baseline + self.refactor_after {
                if self.refactorize().is_err() {
                    return LoopResult::Trouble;
                }
                self.compute_x_basic();
            }
            let bland = streak >= BLAND_AFTER;
            // Leaving row: worst bound violation (Bland: first violation).
            let mut r = usize::MAX;
            let mut worst = PTOL;
            for (i, &x) in self.x_basic.iter().enumerate() {
                let b = self.basis[i] as usize;
                let viol = (self.lower[b] - x).max(x - self.upper[b]);
                if viol > worst {
                    r = i;
                    worst = viol;
                    if bland {
                        break;
                    }
                }
            }
            if r == usize::MAX {
                return LoopResult::Optimal;
            }
            let leaving = self.basis[r] as usize;
            // σ = +1: too high, must decrease; σ = −1: too low, must rise.
            let sigma = if self.x_basic[r] > self.upper[leaving] { 1.0 } else { -1.0 };

            // ρ = B⁻ᵀ e_r, then α_j = ρ·A_j for the active nonbasics.
            let mut rho = std::mem::take(&mut self.rho);
            for v in rho.iter_mut() {
                *v = 0.0;
            }
            rho[r] = 1.0;
            self.btran(&mut rho);

            // Dual ratio test over eligible columns: min |d_j/α_j|, larger
            // |α| on ties (Bland: smallest eligible column id wins ties).
            let mut q = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            let mut best_abs = 0.0;
            for k in 0..self.active.len() {
                let j = self.active[k] as usize;
                let st = self.status[j];
                if st != CStat::AtLower && st != CStat::AtUpper {
                    self.alpha[j] = 0.0;
                    continue;
                }
                let a = self.dot_column(j, &rho);
                self.alpha[j] = a;
                let eligible = match st {
                    CStat::AtLower => sigma * a > PIV_TOL,
                    CStat::AtUpper => sigma * a < -PIV_TOL,
                    _ => false,
                };
                if !eligible {
                    continue;
                }
                let ratio = (self.d[j] / a).abs();
                let better = if bland {
                    ratio < best_ratio - 1e-12 || (ratio < best_ratio + 1e-12 && j < q)
                } else {
                    ratio < best_ratio - 1e-12
                        || (ratio < best_ratio + 1e-12 && a.abs() > best_abs)
                };
                if better {
                    q = j;
                    best_ratio = ratio;
                    best_abs = a.abs();
                }
            }
            self.rho = rho;
            if q == usize::MAX {
                // A violated row no entering column can fix: primal empty.
                return LoopResult::Infeasible;
            }

            // w = B⁻¹ A_q; its r-th entry is the pivot.
            let mut w = std::mem::take(&mut self.work);
            self.scatter_column(q, &mut w);
            self.ftran(&mut w);
            if w[r].abs() < PIV_TOL {
                // FTRAN disagrees with BTRAN pricing: factorization has
                // drifted. Rebuild once and retry; twice is fatal.
                if refactored_here || self.refactorize().is_err() {
                    self.work = w;
                    return LoopResult::Trouble;
                }
                refactored_here = true;
                self.compute_x_basic();
                self.compute_reduced_costs();
                self.work = w;
                continue;
            }
            refactored_here = false;

            // Step: drive the leaving variable exactly to its violated
            // bound; the entering variable absorbs the difference.
            let target = if sigma > 0.0 { self.upper[leaving] } else { self.lower[leaving] };
            let delta = (self.x_basic[r] - target) / w[r];
            for (i, x) in self.x_basic.iter_mut().enumerate() {
                if i != r {
                    *x -= w[i] * delta;
                }
            }
            self.x_basic[r] = self.nonbasic_value(q) + delta;

            // Dual step γ zeroes the entering reduced cost.
            let gamma = self.d[q] / self.alpha[q];
            for k in 0..self.active.len() {
                let j = self.active[k] as usize;
                let st = self.status[j];
                if st == CStat::AtLower || st == CStat::AtUpper {
                    self.d[j] -= gamma * self.alpha[j];
                }
            }
            self.d[q] = 0.0;
            self.d[leaving] = -gamma;

            self.status[leaving] = if self.upper[leaving] - self.lower[leaving] <= PTOL {
                CStat::Fixed
            } else if sigma > 0.0 {
                CStat::AtUpper
            } else {
                CStat::AtLower
            };
            self.status[q] = CStat::Basic;
            self.pos_in_basis[leaving] = NOT_BASIC;
            self.pos_in_basis[q] = r as u32;
            self.basis[r] = q as u32;
            self.eta_push(r, &w);
            self.work = w;
            self.stats.pivots += 1;

            // Degeneracy streak: the dual objective moves by |γ|·|violation|.
            if gamma.abs() * worst > 1e-12 {
                streak = 0;
            } else {
                streak = streak.saturating_add(1);
            }
        }
        LoopResult::Trouble
    }

    /// Deterministic tie-break weight of column `j`: positive, strictly
    /// decreasing in the column id, generic enough that the weighted
    /// optimum over an optimal face is (generically) unique. Slack columns
    /// carry no weight — canonicalization orients *structural* variables.
    fn tiebreak_weight(&self, j: usize) -> f64 {
        if j < self.n_vars {
            1.0 / (j as f64 + 2.0)
        } else {
            0.0
        }
    }

    /// Walks the optimal face to its canonical vertex.
    ///
    /// The dual phase stops at *some* vertex of the optimal face, and
    /// which one depends on the starting basis — i.e. on solve history.
    /// Distributed enforcement needs the plan to be a function of the
    /// problem alone: every redirector solves the same global window LP
    /// and releases its own share of the plan, so two redirectors whose
    /// warm bases evolved differently must not land on different
    /// (mirror-image) optimal assignments, or their combined releases
    /// overload one server while another idles. The cold dense solver had
    /// this history independence for free; this pass restores it for the
    /// warm engine. Holding the true objective at its optimum — only
    /// columns whose true reduced cost is zero may enter, so every step
    /// stays on the optimal face — it maximizes a fixed generic secondary
    /// weight with primal simplex steps. The endpoint, the weight-maximal
    /// vertex of the face, is unique for generic weights and therefore
    /// independent of whichever optimal basis the dual phase reached.
    ///
    /// Errors only when a refactorization fails (basis left unusable; the
    /// caller must fall back). Hitting the iteration cap exits cleanly:
    /// the point is still optimal and feasible, merely not canonical.
    fn canonicalize(&mut self) -> Result<(), ()> {
        let m = self.m;
        let max_iters = 100 + 4 * (m + self.active.len());
        let mut streak = 0usize;
        for _ in 0..max_iters {
            if self.eta_count() > self.eta_baseline + self.refactor_after {
                self.refactorize()?;
                self.compute_x_basic();
            }
            // Fresh duals for both objectives at the current basis:
            // yc = B⁻ᵀ c_B gates face membership, yw = B⁻ᵀ w_B prices the
            // tie-break. Both are recomputed per pivot — canonicalization
            // takes few steps, and exact face membership matters more than
            // incremental-update speed.
            let mut yc = std::mem::take(&mut self.rho);
            let mut yw = std::mem::take(&mut self.rho2);
            for r in 0..m {
                let b = self.basis[r] as usize;
                yc[r] = self.cost[b];
                yw[r] = self.tiebreak_weight(b);
            }
            self.btran(&mut yc);
            self.btran(&mut yw);

            // Entering column: largest tie-break improvement among
            // zero-true-reduced-cost nonbasics (Bland: smallest id — the
            // active list is ascending, so "first eligible" is exactly
            // that; strict `>` keeps the smallest id on Dantzig ties too).
            let bland = streak >= BLAND_AFTER;
            let mut q = usize::MAX;
            let mut q_dw = 0.0;
            let mut best = WTOL;
            for k in 0..self.active.len() {
                let j = self.active[k] as usize;
                let st = self.status[j];
                if st != CStat::AtLower && st != CStat::AtUpper {
                    continue;
                }
                let dc = self.cost[j] - self.dot_column(j, &yc);
                if dc.abs() > FACE_TOL {
                    continue;
                }
                let dw = self.tiebreak_weight(j) - self.dot_column(j, &yw);
                let improving = match st {
                    CStat::AtLower => dw > WTOL,
                    _ => dw < -WTOL,
                };
                if !improving {
                    continue;
                }
                if bland {
                    q = j;
                    q_dw = dw;
                    break;
                }
                if dw.abs() > best {
                    q = j;
                    q_dw = dw;
                    best = dw.abs();
                }
            }
            self.rho = yc;
            self.rho2 = yw;
            if q == usize::MAX {
                return Ok(());
            }
            // Direction sign: entering rises off its lower bound or falls
            // off its upper bound.
            let s = if self.status[q] == CStat::AtLower { 1.0 } else { -1.0 };

            let mut w = std::mem::take(&mut self.work);
            self.scatter_column(q, &mut w);
            self.ftran(&mut w);

            // Bounded ratio test: the entering column moves by t ≥ 0,
            // basic i by −s·w[i]·t; the first bound hit wins (larger
            // pivot magnitude on ties, then smaller row — deterministic).
            let mut t = self.upper[q] - self.lower[q]; // own bound flip
            let mut leave = usize::MAX;
            let mut leave_up = false;
            let mut best_piv = 0.0;
            for (i, &wi) in w.iter().enumerate() {
                let step = s * wi;
                let b = self.basis[i] as usize;
                let (limit, up) = if step > PIV_TOL && self.lower[b].is_finite() {
                    ((self.x_basic[i] - self.lower[b]) / step, false)
                } else if step < -PIV_TOL && self.upper[b].is_finite() {
                    ((self.upper[b] - self.x_basic[i]) / (-step), true)
                } else {
                    continue;
                };
                let limit = limit.max(0.0);
                if limit < t - 1e-12
                    || (limit < t + 1e-12 && leave != usize::MAX && wi.abs() > best_piv)
                {
                    t = limit;
                    leave = i;
                    leave_up = up;
                    best_piv = wi.abs();
                }
            }
            if !t.is_finite() {
                // Numerically unbounded tie-break direction (cannot happen
                // with boxed structural columns): stop with the current
                // optimal point rather than guessing a step.
                self.work = w;
                return Ok(());
            }

            if leave == usize::MAX {
                // Bound flip: the entering column crosses its own box; the
                // basis is unchanged.
                for (i, &wi) in w.iter().enumerate() {
                    self.x_basic[i] -= s * wi * t;
                }
                self.status[q] = if s > 0.0 { CStat::AtUpper } else { CStat::AtLower };
            } else {
                if w[leave].abs() < PIV_TOL {
                    self.work = w;
                    self.refactorize()?;
                    self.compute_x_basic();
                    continue;
                }
                let leaving = self.basis[leave] as usize;
                for (i, x) in self.x_basic.iter_mut().enumerate() {
                    if i != leave {
                        *x -= s * w[i] * t;
                    }
                }
                self.x_basic[leave] = self.nonbasic_value(q) + s * t;
                self.status[leaving] = if self.upper[leaving] - self.lower[leaving] <= PTOL {
                    CStat::Fixed
                } else if leave_up {
                    CStat::AtUpper
                } else {
                    CStat::AtLower
                };
                self.status[q] = CStat::Basic;
                self.pos_in_basis[leaving] = NOT_BASIC;
                self.pos_in_basis[q] = leave as u32;
                self.basis[leave] = q as u32;
                self.eta_push(leave, &w);
                self.stats.pivots += 1;
            }
            self.work = w;

            // Progress is tie-break-objective gain; degenerate steps feed
            // the anti-cycling streak.
            if q_dw.abs() * t > 1e-12 {
                streak = 0;
            } else {
                streak = streak.saturating_add(1);
            }
        }
        Ok(())
    }

    /// Extracts the structural solution and objective.
    fn extract(&mut self, problem: &Problem) {
        self.x_out.clear();
        self.x_out.resize(self.n_vars, 0.0);
        for k in 0..self.active.len() {
            let j = self.active[k] as usize;
            if j >= self.n_vars {
                continue;
            }
            let p = self.pos_in_basis[j];
            let v = if p != NOT_BASIC {
                self.x_basic[p as usize]
            } else {
                self.nonbasic_value(j)
            };
            self.x_out[j] = v.max(0.0);
        }
        self.objective = problem.objective_at(&self.x_out);
    }

    /// One full attempt from the current basis. `x_basic` and `d` must not
    /// be assumed current; they are recomputed here.
    fn attempt(&mut self, problem: &Problem) -> LoopResult {
        self.compute_reduced_costs();
        if self.repair_statuses().is_err() {
            return LoopResult::Trouble;
        }
        self.compute_x_basic();
        let out = self.dual_simplex();
        if let LoopResult::Optimal = out {
            if self.canonicalize().is_err() {
                return LoopResult::Trouble;
            }
            self.extract(problem);
            if !problem.is_feasible(&self.x_out, VERIFY_TOL) {
                return LoopResult::Trouble;
            }
        }
        out
    }

    /// Cold path: rebuild nothing but the basis — reset to slacks and solve.
    fn cold_attempt(&mut self, problem: &Problem) -> WarmOutcome {
        if self.reset_to_slack_basis().is_err() {
            self.shape = 0; // force rebuild next time
            return WarmOutcome::Unsuitable;
        }
        match self.attempt(problem) {
            LoopResult::Optimal => WarmOutcome::Optimal,
            LoopResult::Infeasible => WarmOutcome::Infeasible,
            LoopResult::Trouble => {
                self.shape = 0;
                WarmOutcome::Unsuitable
            }
        }
    }

    /// Solves `problem` through this handle. See [`Problem::solve_warm`].
    pub(crate) fn solve(&mut self, problem: &Problem) -> WarmOutcome {
        self.stats.solves += 1;
        let same_shape = self.shape != 0 && self.shape == Self::pattern_fingerprint(problem);
        if !same_shape {
            self.rebuild_store(problem);
            let _ = self.sync_values(problem);
            self.rebuild_active();
            return self.cold_attempt(problem);
        }

        let changed_slots = self.sync_values(problem);
        self.rebuild_active();
        if self.basis.is_empty() {
            return self.cold_attempt(problem);
        }

        // Rank-one basis updates for changed basic columns (the θ column,
        // most windows); a near-singular replacement forces a rebuild.
        let mut need_refactor = false;
        for &p in &changed_slots {
            let p = p as usize;
            let mut w = std::mem::take(&mut self.work);
            self.scatter_column(self.basis[p] as usize, &mut w);
            self.ftran(&mut w);
            if w[p].abs() < PIV_TOL {
                need_refactor = true;
                self.work = w;
                break;
            }
            self.eta_push(p, &w);
            self.work = w;
        }
        if need_refactor && self.refactorize().is_err() {
            return self.cold_attempt(problem);
        }

        self.stats.warm_solves += 1;
        match self.attempt(problem) {
            LoopResult::Optimal => WarmOutcome::Optimal,
            // Dual-simplex infeasibility proofs are exact in exact
            // arithmetic but tolerance-based here; confirm from a clean
            // start before reporting an empty feasible region.
            LoopResult::Infeasible => self.cold_attempt(problem),
            LoopResult::Trouble => self.cold_attempt(problem),
        }
    }
}

impl Problem {
    /// Solves through a persistent [`WarmBasis`]: a warm-started dual
    /// simplex over sparse columns when the handle already holds this
    /// problem shape's basis, a cold (all-slack-basis) dual simplex
    /// otherwise. On [`WarmOutcome::Optimal`] the solution is read from
    /// [`WarmBasis::x`] / [`WarmBasis::objective_value`] without
    /// allocating. [`WarmOutcome::Unsuitable`] means this engine cannot
    /// solve the problem (e.g. a positive-cost variable with no upper
    /// bound makes the slack basis dual infeasible) — use
    /// [`Problem::solve_in_place`] instead.
    pub fn solve_warm(&self, warm: &mut WarmBasis) -> WarmOutcome {
        warm.solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpOutcome, Relation};

    fn assert_matches_reference(p: &Problem, warm: &mut WarmBasis) {
        let out = p.solve_warm(warm);
        match p.solve_reference() {
            LpOutcome::Optimal(s) => {
                assert_eq!(out, WarmOutcome::Optimal, "reference optimal {}", s.objective);
                assert!(
                    (warm.objective_value() - s.objective).abs() < 1e-6,
                    "warm {} vs reference {}",
                    warm.objective_value(),
                    s.objective
                );
                assert!(p.is_feasible(warm.x(), 1e-6));
            }
            LpOutcome::Infeasible => assert_eq!(out, WarmOutcome::Infeasible),
            other => panic!("reference returned {other:?}"),
        }
    }

    #[test]
    fn basic_two_var_max() {
        let mut p = Problem::new(2);
        p.set_objective(vec![3.0, 2.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(0, 1.0), (1, 3.0)], Relation::Le, 6.0);
        p.set_upper_bound(0, 10.0);
        p.set_upper_bound(1, 10.0);
        let mut warm = WarmBasis::new();
        assert_matches_reference(&p, &mut warm);
        assert!((warm.objective_value() - 12.0).abs() < 1e-9);
        assert!((warm.x()[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ge_and_eq_constraints() {
        let mut p = Problem::new(2);
        p.set_objective(vec![-1.0, -1.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 2.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Eq, 0.5);
        let mut warm = WarmBasis::new();
        assert_matches_reference(&p, &mut warm);
        assert!((warm.objective_value() + 2.0).abs() < 1e-9);
        assert!((warm.x()[0] - 0.5).abs() < 1e-9);
        assert!((warm.x()[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_no_normalization_needed() {
        let mut p = Problem::new(2);
        p.set_objective(vec![1.0, 0.0]);
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], Relation::Le, -1.0);
        p.set_upper_bound(0, 50.0);
        p.set_upper_bound(1, 3.0);
        let mut warm = WarmBasis::new();
        assert_matches_reference(&p, &mut warm);
        assert!((warm.x()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(1);
        p.set_objective(vec![-1.0]);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 5.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 3.0);
        assert_eq!(p.solve_warm(&mut WarmBasis::new()), WarmOutcome::Infeasible);
    }

    #[test]
    fn unbounded_is_unsuitable() {
        // max x with x free above: the slack basis cannot be made dual
        // feasible, so the engine hands off to the dense solver.
        let mut p = Problem::new(2);
        p.set_objective(vec![1.0, 0.0]);
        p.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
        assert_eq!(p.solve_warm(&mut WarmBasis::new()), WarmOutcome::Unsuitable);
    }

    #[test]
    fn bounded_by_upper_bounds_only() {
        let mut p = Problem::new(3);
        p.set_objective(vec![1.0, 2.0, 3.0]);
        p.set_upper_bound(0, 1.0);
        p.set_upper_bound(1, 2.0);
        p.set_upper_bound(2, 3.0);
        let mut warm = WarmBasis::new();
        assert_matches_reference(&p, &mut warm);
        assert_eq!(warm.x(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn zero_variable_problems() {
        let p = Problem::new(0);
        let mut warm = WarmBasis::new();
        assert_eq!(p.solve_warm(&mut warm), WarmOutcome::Optimal);
        assert_eq!(warm.objective_value(), 0.0);
        let mut p = Problem::new(0);
        p.add_constraint(vec![], Relation::Ge, 1.0);
        assert_eq!(p.solve_warm(&mut warm), WarmOutcome::Infeasible);
    }

    #[test]
    fn community_theta_shape() {
        let mut p = Problem::new(3);
        p.set_objective(vec![1.0, 0.0, 0.0]);
        p.set_upper_bound(0, 1.0);
        p.add_constraint(vec![(1, 1.0), (0, -40.0)], Relation::Ge, 0.0);
        p.add_constraint(vec![(2, 1.0), (0, -20.0)], Relation::Ge, 0.0);
        p.add_constraint(vec![(1, 1.0), (2, 1.0)], Relation::Le, 30.0);
        p.set_upper_bound(1, 40.0);
        p.set_upper_bound(2, 20.0);
        let mut warm = WarmBasis::new();
        assert_matches_reference(&p, &mut warm);
        assert!((warm.x()[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn warm_resolve_after_rhs_change_reuses_basis() {
        // A θ-style program whose rhs and θ-coefficients drift per window.
        let build = |q: [f64; 2]| {
            let mut p = Problem::new(3);
            p.set_objective(vec![1.0, 0.0, 0.0]);
            p.set_upper_bound(0, 1.0);
            p.add_constraint(vec![(0, -q[0]), (1, 1.0)], Relation::Ge, 0.0);
            p.add_constraint(vec![(0, -q[1]), (2, 1.0)], Relation::Ge, 0.0);
            p.add_constraint(vec![(1, 1.0), (2, 1.0)], Relation::Le, 30.0);
            p.add_constraint(vec![(1, 1.0)], Relation::Le, q[0]);
            p.add_constraint(vec![(2, 1.0)], Relation::Le, q[1]);
            p.set_upper_bound(1, 40.0);
            p.set_upper_bound(2, 20.0);
            p
        };
        let mut warm = WarmBasis::new();
        let windows = [[40.0, 20.0], [41.0, 19.5], [39.0, 21.0], [45.0, 18.0], [40.0, 20.0]];
        for q in windows {
            assert_matches_reference(&build(q), &mut warm);
        }
        let stats = warm.stats();
        assert_eq!(stats.solves, 5);
        assert!(stats.warm_solves >= 4, "stats {stats:?}");
        assert_eq!(stats.cold_starts, 1);
    }

    #[test]
    fn optimal_vertex_is_history_independent() {
        // A mirror-symmetric window LP: two principals, two equal servers,
        // pure-θ objective. The optimal face is fat (any split of each
        // principal across the servers achieves θ*), so without the
        // canonicalization pass the returned vertex depends on the basis
        // the dual phase started from. Distributed enforcement requires
        // the plan to be a function of the problem alone: handles with
        // different solve histories must agree on the same vertex.
        // Columns: θ, x_A1, x_A2, x_B1, x_B2.
        let build = |q: [f64; 2]| {
            let mut p = Problem::new(5);
            p.set_objective(vec![1.0, 0.0, 0.0, 0.0, 0.0]);
            p.set_upper_bound(0, 1.0);
            p.add_constraint(vec![(1, 1.0), (2, 1.0), (0, -q[0])], Relation::Ge, 0.0);
            p.add_constraint(vec![(3, 1.0), (4, 1.0), (0, -q[1])], Relation::Ge, 0.0);
            p.add_constraint(vec![(1, 1.0), (2, 1.0)], Relation::Le, q[0]);
            p.add_constraint(vec![(3, 1.0), (4, 1.0)], Relation::Le, q[1]);
            p.add_constraint(vec![(1, 1.0), (3, 1.0)], Relation::Le, 16.0);
            p.add_constraint(vec![(2, 1.0), (4, 1.0)], Relation::Le, 16.0);
            for j in 1..5 {
                p.set_upper_bound(j, 16.0);
            }
            p
        };
        // Two handles with deliberately different warm histories.
        let mut warm_a = WarmBasis::new();
        let mut warm_b = WarmBasis::new();
        for q in [[90.0, 84.0], [94.75, 84.0], [89.5, 90.5]] {
            assert_eq!(build(q).solve_warm(&mut warm_a), WarmOutcome::Optimal);
        }
        for q in [[30.0, 69.0], [70.0, 84.0], [89.5, 69.0], [70.0, 30.0]] {
            assert_eq!(build(q).solve_warm(&mut warm_b), WarmOutcome::Optimal);
        }
        let p = build([90.0, 90.0]);
        assert_eq!(p.solve_warm(&mut warm_a), WarmOutcome::Optimal);
        assert_eq!(p.solve_warm(&mut warm_b), WarmOutcome::Optimal);
        for j in 0..5 {
            assert!(
                (warm_a.x()[j] - warm_b.x()[j]).abs() < 1e-8,
                "histories disagree at {j}: {:?} vs {:?}",
                warm_a.x(),
                warm_b.x()
            );
        }
        // Re-solving the identical problem must be a fixpoint: same
        // vertex, and no pivots at all (the canonical vertex prices out).
        let x_prev = warm_a.x().to_vec();
        let pivots_prev = warm_a.stats().pivots;
        assert_eq!(p.solve_warm(&mut warm_a), WarmOutcome::Optimal);
        assert_eq!(warm_a.x(), &x_prev[..]);
        assert_eq!(warm_a.stats().pivots, pivots_prev);
    }

    #[test]
    fn shape_change_triggers_cold_restart() {
        let mut p1 = Problem::new(2);
        p1.set_objective(vec![1.0, 1.0]);
        p1.set_upper_bound(0, 5.0);
        p1.set_upper_bound(1, 5.0);
        p1.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        let mut p2 = Problem::new(3);
        p2.set_objective(vec![1.0, 1.0, 1.0]);
        for j in 0..3 {
            p2.set_upper_bound(j, 5.0);
        }
        p2.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 6.0);
        let mut warm = WarmBasis::new();
        assert_matches_reference(&p1, &mut warm);
        assert_matches_reference(&p2, &mut warm);
        assert_matches_reference(&p1, &mut warm);
        assert_eq!(warm.stats().cold_starts, 3);
        assert_eq!(warm.stats().warm_solves, 0);
    }

    #[test]
    fn fixed_columns_stay_out_of_the_basis() {
        // Middle variable boxed to zero: it must never enter.
        let mut p = Problem::new(3);
        p.set_objective(vec![1.0, 5.0, 1.0]);
        p.set_upper_bound(0, 2.0);
        p.set_upper_bound(1, 0.0);
        p.set_upper_bound(2, 2.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 3.0);
        let mut warm = WarmBasis::new();
        assert_matches_reference(&p, &mut warm);
        assert_eq!(warm.x()[1], 0.0);
        assert!((warm.objective_value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bound_widening_reactivates_fixed_columns() {
        // Provider-style: a queue going 0 → positive re-opens the box.
        let build = |q: f64| {
            let mut p = Problem::new(2);
            p.set_objective(vec![2.0, 1.0]);
            p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 10.0);
            p.set_upper_bound_exact(0, 8.0);
            p.set_upper_bound_exact(1, q);
            p
        };
        let mut warm = WarmBasis::new();
        for q in [0.0, 0.0, 6.0, 3.0, 0.0, 6.0] {
            assert_matches_reference(&build(q), &mut warm);
        }
    }

    #[test]
    fn degenerate_beale_with_boxes() {
        // Beale's cycling example, boxed so the dual engine can start.
        let mut p = Problem::new(4);
        p.set_objective(vec![0.75, -150.0, 0.02, -6.0]);
        for j in 0..4 {
            p.set_upper_bound(j, 100.0);
        }
        p.add_constraint(vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], Relation::Le, 0.0);
        p.add_constraint(vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], Relation::Le, 0.0);
        p.add_constraint(vec![(2, 1.0)], Relation::Le, 1.0);
        let mut warm = WarmBasis::new();
        assert_matches_reference(&p, &mut warm);
        assert!((warm.objective_value() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn many_windows_force_refactorization() {
        // Enough drifting windows to exceed the eta budget several times.
        let build = |t: f64| {
            let mut p = Problem::new(4);
            p.set_objective(vec![1.0, 2.0, 3.0, 4.0]);
            for j in 0..4 {
                p.set_upper_bound(j, 5.0 + (j as f64));
            }
            p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0 + t);
            p.add_constraint(vec![(1, 1.0), (2, 1.0)], Relation::Le, 5.0 - t * 0.5);
            p.add_constraint(vec![(2, 1.0), (3, 1.0)], Relation::Le, 6.0 + t * 0.25);
            p.add_constraint(vec![(0, 1.0), (3, 1.0)], Relation::Ge, 1.0 + t * 0.1);
            p
        };
        let mut warm = WarmBasis::new();
        for w in 0..400 {
            let t = (w % 7) as f64 * 0.37;
            assert_matches_reference(&build(t), &mut warm);
        }
        assert!(warm.stats().warm_solves > 300);
    }
}
