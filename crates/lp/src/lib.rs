//! A small, dependency-free linear-programming solver.
//!
//! The paper's redirectors solve one LP per 100 ms scheduling window
//! ("the complexity of this strategy only depends on the number of
//! principals involved in the agreements; this latter number is expected to
//! be small"). This crate provides the solver those schedulers need: a dense
//! two-phase primal simplex over a tableau, using Bland's anti-cycling rule.
//!
//! Problems are stated in the natural mixed form — maximize `c·x` subject to
//! `≤`/`≥`/`=` constraints with non-negative variables and optional per-
//! variable upper bounds:
//!
//! ```
//! use covenant_lp::{Problem, Relation, LpOutcome};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6
//! let mut p = Problem::new(2);
//! p.set_objective(vec![3.0, 2.0]);
//! p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
//! p.add_constraint(vec![(0, 1.0), (1, 3.0)], Relation::Le, 6.0);
//! match p.solve() {
//!     LpOutcome::Optimal(s) => {
//!         assert!((s.objective - 12.0).abs() < 1e-9);
//!         assert!((s.x[0] - 4.0).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```
//!
//! Problem sizes in this workspace are tiny (a handful of principals, so at
//! most a few hundred variables), so a dense tableau with `O((m+n)·m)` work
//! per pivot is the right tool; no sparse or revised-simplex machinery is
//! needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
pub mod reference;
mod simplex;

pub use problem::{Constraint, LpError, Problem, Relation};
pub use reference::solve_reference;
pub use simplex::{LpOutcome, LpStatus, SimplexWorkspace, Solution, DEFAULT_BLAND_AFTER, EPS};
