//! A small, dependency-free linear-programming solver.
//!
//! The paper's redirectors solve one LP per 100 ms scheduling window
//! ("the complexity of this strategy only depends on the number of
//! principals involved in the agreements; this latter number is expected to
//! be small"). This crate provides the solver those schedulers need: a dense
//! two-phase primal simplex over a tableau, using Bland's anti-cycling rule.
//!
//! Problems are stated in the natural mixed form — maximize `c·x` subject to
//! `≤`/`≥`/`=` constraints with non-negative variables and optional per-
//! variable upper bounds:
//!
//! ```
//! use covenant_lp::{Problem, Relation, LpOutcome};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6
//! let mut p = Problem::new(2);
//! p.set_objective(vec![3.0, 2.0]);
//! p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
//! p.add_constraint(vec![(0, 1.0), (1, 3.0)], Relation::Le, 6.0);
//! match p.solve() {
//!     LpOutcome::Optimal(s) => {
//!         assert!((s.objective - 12.0).abs() < 1e-9);
//!         assert!((s.x[0] - 4.0).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```
//!
//! Two engines share this problem type:
//!
//! * the dense two-phase tableau ([`Problem::solve`] /
//!   [`Problem::solve_in_place`]) — simple and robust, right for a handful
//!   of principals where the tableau fits in cache;
//! * the sparse revised simplex with a warm-started dual phase
//!   ([`Problem::solve_warm`] through a persistent [`WarmBasis`]) — the
//!   large-`n` path. The window LPs have `O(n²)` variables but only
//!   `O(agreements)` nonzeros, and consecutive 100 ms windows differ only
//!   in queue-derived rhs and bounds, so re-solving from the previous
//!   window's basis takes a handful of dual pivots instead of a full
//!   cold solve. On shape changes or numerical trouble the warm engine
//!   reports [`WarmOutcome::Unsuitable`] and callers fall back to the
//!   dense solver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
pub mod reference;
mod revised;
mod simplex;

pub use problem::{Constraint, LpError, Problem, Relation};
pub use reference::solve_reference;
pub use revised::{WarmBasis, WarmOutcome, WarmStats};
pub use simplex::{LpOutcome, LpStatus, SimplexWorkspace, Solution, DEFAULT_BLAND_AFTER, EPS};
