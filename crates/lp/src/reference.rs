//! Retained naive simplex — the correctness oracle for the fast solver.
//!
//! This is the original pedagogically-clear implementation: two-phase
//! primal simplex on a `Vec<Vec<f64>>` tableau, Bland's rule always on,
//! and a full pivot-row clone on every pivot. It is deliberately kept
//! unoptimized so property tests can check the optimized solver in
//! `simplex.rs` against an independent implementation (same outcome
//! classification, objectives within `1e-6`).

use crate::simplex::{LpOutcome, Solution, EPS};
use crate::{Problem, Relation};

/// Dense tableau state: `m` constraint rows over `ncols` columns plus a
/// trailing rhs column, an objective (reduced-cost) row, and the basis map.
struct Tableau {
    m: usize,
    ncols: usize,
    rows: Vec<Vec<f64>>, // each length ncols + 1 (rhs last)
    obj: Vec<f64>,       // length ncols + 1 (last cell = -objective value)
    basis: Vec<usize>,
    /// Columns allowed to enter the basis (artificials are barred in
    /// phase 2).
    enterable: Vec<bool>,
}

impl Tableau {
    fn rhs(&self, i: usize) -> f64 {
        self.rows[i][self.ncols]
    }

    /// Performs one pivot at (row `r`, column `s`).
    fn pivot(&mut self, r: usize, s: usize) {
        let piv = self.rows[r][s];
        debug_assert!(piv.abs() > EPS, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for v in &mut self.rows[r] {
            *v *= inv;
        }
        // Snapshot the pivot row to avoid aliasing while updating others.
        let prow = self.rows[r].clone();
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let factor = self.rows[i][s];
            // Exact-zero skip of an untouched coefficient, not a tolerance.
            if factor != 0.0 { // covenant: allow(float-eq)
                for (v, p) in self.rows[i].iter_mut().zip(&prow) {
                    *v -= factor * p;
                }
                self.rows[i][s] = 0.0; // exact zero, fight drift
            }
        }
        let factor = self.obj[s];
        // Exact-zero skip of an untouched coefficient, not a tolerance.
        if factor != 0.0 { // covenant: allow(float-eq)
            for (v, p) in self.obj.iter_mut().zip(&prow) {
                *v -= factor * p;
            }
            self.obj[s] = 0.0;
        }
        self.basis[r] = s;
    }

    /// Runs simplex iterations until optimal/unbounded, using Bland's rule.
    fn run(&mut self, max_iters: usize) -> RunResult {
        for _ in 0..max_iters {
            // Bland entering rule: smallest-index column with positive
            // reduced cost.
            let Some(s) = (0..self.ncols).find(|&j| self.enterable[j] && self.obj[j] > EPS)
            else {
                return RunResult::Optimal;
            };
            // Ratio test, Bland tie-break on smallest basis index.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..self.m {
                let a = self.rows[i][s];
                if a > EPS {
                    let ratio = self.rhs(i) / a;
                    match best {
                        None => best = Some((i, ratio)),
                        Some((bi, br)) => {
                            if ratio < br - EPS
                                || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                            {
                                best = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            match best {
                Some((r, _)) => self.pivot(r, s),
                None => return RunResult::Unbounded,
            }
        }
        RunResult::IterationLimit
    }

    /// Rebuilds the objective row for cost vector `c` (length `ncols`),
    /// pricing out the current basis.
    fn install_objective(&mut self, c: &[f64]) {
        self.obj = c.to_vec();
        self.obj.push(0.0);
        for i in 0..self.m {
            let cb = c[self.basis[i]];
            // Exact-zero basis-cost skip, not a tolerance.
            if cb != 0.0 { // covenant: allow(float-eq)
                let row = self.rows[i].clone();
                for (v, p) in self.obj.iter_mut().zip(&row) {
                    *v -= cb * p;
                }
            }
        }
    }
}

enum RunResult {
    Optimal,
    Unbounded,
    IterationLimit,
}

/// Solves `problem` with the naive two-phase simplex method.
pub fn solve_reference(problem: &Problem) -> LpOutcome {
    let n = problem.n_vars();

    // Collect rows: structural coefficients (dense), relation, rhs — with
    // upper bounds materialized as additional `≤` rows.
    struct Row {
        a: Vec<f64>,
        rel: Relation,
        rhs: f64,
    }
    let mut raw: Vec<Row> = Vec::with_capacity(problem.n_constraints());
    for c in problem.constraints() {
        let mut a = vec![0.0; n];
        for &(i, v) in &c.coeffs {
            a[i] += v;
        }
        raw.push(Row { a, rel: c.rel, rhs: c.rhs });
    }
    for (i, ub) in problem.upper_bounds().iter().enumerate() {
        if let Some(u) = ub {
            let mut a = vec![0.0; n];
            a[i] = 1.0;
            raw.push(Row { a, rel: Relation::Le, rhs: *u });
        }
    }

    // Normalize to rhs >= 0.
    for row in &mut raw {
        if row.rhs < 0.0 {
            for v in &mut row.a {
                *v = -*v;
            }
            row.rhs = -row.rhs;
            row.rel = match row.rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    let m = raw.len();
    // Column layout: [0, n) structural | slacks/surplus | artificials.
    let n_slack = raw
        .iter()
        .filter(|r| matches!(r.rel, Relation::Le | Relation::Ge))
        .count();
    let n_art = raw
        .iter()
        .filter(|r| matches!(r.rel, Relation::Ge | Relation::Eq))
        .count();
    let ncols = n + n_slack + n_art;

    let mut rows = vec![vec![0.0; ncols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut is_artificial = vec![false; ncols];
    let mut slack_at = n;
    let mut art_at = n + n_slack;

    for (i, row) in raw.iter().enumerate() {
        rows[i][..n].copy_from_slice(&row.a);
        rows[i][ncols] = row.rhs;
        match row.rel {
            Relation::Le => {
                rows[i][slack_at] = 1.0;
                basis[i] = slack_at;
                slack_at += 1;
            }
            Relation::Ge => {
                rows[i][slack_at] = -1.0;
                slack_at += 1;
                rows[i][art_at] = 1.0;
                is_artificial[art_at] = true;
                basis[i] = art_at;
                art_at += 1;
            }
            Relation::Eq => {
                rows[i][art_at] = 1.0;
                is_artificial[art_at] = true;
                basis[i] = art_at;
                art_at += 1;
            }
        }
    }

    let mut t = Tableau {
        m,
        ncols,
        rows,
        obj: vec![0.0; ncols + 1],
        basis,
        enterable: vec![true; ncols],
    };
    let max_iters = 200 * (m + ncols + 16);

    // Phase 1: maximize -(sum of artificials); optimum 0 iff feasible.
    if n_art > 0 {
        let mut c1 = vec![0.0; ncols];
        for (j, flag) in is_artificial.iter().enumerate() {
            if *flag {
                c1[j] = -1.0;
            }
        }
        t.install_objective(&c1);
        match t.run(max_iters) {
            RunResult::Optimal => {}
            RunResult::Unbounded => return LpOutcome::Numerical, // cannot happen: bounded above by 0
            RunResult::IterationLimit => return LpOutcome::Numerical,
        }
        let phase1_value = -t.obj[ncols]; // = max of -(Σ art)
        if phase1_value < -1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive any still-basic artificials out of the basis.
        for i in 0..t.m {
            if is_artificial[t.basis[i]] {
                if let Some(s) =
                    (0..ncols).find(|&j| !is_artificial[j] && t.rows[i][j].abs() > EPS)
                {
                    t.pivot(i, s);
                }
                // If no pivot column exists the row is redundant (all-zero in
                // structural/slack space); the artificial stays basic at
                // value 0 and is harmless because it cannot re-enter.
            }
        }
        for (j, flag) in is_artificial.iter().enumerate() {
            if *flag {
                t.enterable[j] = false;
            }
        }
    }

    // Phase 2: the real objective.
    let mut c2 = vec![0.0; ncols];
    c2[..n].copy_from_slice(problem.objective());
    t.install_objective(&c2);
    match t.run(max_iters) {
        RunResult::Optimal => {
            let mut x = vec![0.0; n];
            for i in 0..t.m {
                let b = t.basis[i];
                if b < n {
                    x[b] = t.rhs(i).max(0.0);
                }
            }
            let objective = problem.objective_at(&x);
            LpOutcome::Optimal(Solution { x, objective })
        }
        RunResult::Unbounded => LpOutcome::Unbounded,
        RunResult::IterationLimit => LpOutcome::Numerical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_solves_the_basic_cases() {
        // max 3x + 2y st x+y<=4, x+3y<=6 -> x=4, y=0, z=12.
        let mut p = Problem::new(2);
        p.set_objective(vec![3.0, 2.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(0, 1.0), (1, 3.0)], Relation::Le, 6.0);
        let s = solve_reference(&p).expect_optimal("basic");
        assert!((s.objective - 12.0).abs() < 1e-9);

        let mut inf = Problem::new(1);
        inf.add_constraint(vec![(0, 1.0)], Relation::Ge, 5.0);
        inf.add_constraint(vec![(0, 1.0)], Relation::Le, 3.0);
        assert_eq!(solve_reference(&inf), LpOutcome::Infeasible);

        let mut unb = Problem::new(2);
        unb.set_objective(vec![1.0, 0.0]);
        unb.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
        assert_eq!(solve_reference(&unb), LpOutcome::Unbounded);
    }

    #[test]
    fn oracle_handles_degeneracy_via_bland() {
        // Beale's cycling example terminates under Bland's rule.
        let mut p = Problem::new(4);
        p.set_objective(vec![0.75, -150.0, 0.02, -6.0]);
        p.add_constraint(
            vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(vec![(2, 1.0)], Relation::Le, 1.0);
        let s = solve_reference(&p).expect_optimal("beale");
        assert!((s.objective - 0.05).abs() < 1e-9);
    }
}
