//! Property tests for agreement-graph flow computation.

use covenant_agreements::{AgreementGraph, PrincipalId};
use proptest::prelude::*;

/// Strategy: a random valid agreement graph. Edges are attempted in a
/// deterministic order; each issuer's mandatory budget is respected so
/// construction never fails.
fn graph_strategy() -> impl Strategy<Value = AgreementGraph> {
    (2usize..7).prop_flat_map(|n| {
        let caps = proptest::collection::vec(0.0..1000.0f64, n);
        let edges = proptest::collection::vec((0.0..0.35f64, 0.0..0.5f64, any::<bool>()), n * n);
        (caps, edges).prop_map(move |(caps, edges)| {
            let mut g = AgreementGraph::new();
            let ids: Vec<_> = caps
                .iter()
                .enumerate()
                .map(|(i, &c)| g.add_principal(format!("P{i}"), c))
                .collect();
            let mut budget = vec![1.0f64; n];
            for (idx, (lb_raw, width, enabled)) in edges.into_iter().enumerate() {
                if !enabled {
                    continue;
                }
                let i = idx / n;
                let j = idx % n;
                if i == j {
                    continue;
                }
                let lb = lb_raw.min(budget[i] - 0.01).max(0.0);
                let ub = (lb + width).min(1.0);
                if g.add_agreement(ids[i], ids[j], lb, ub).is_ok() {
                    budget[i] -= lb;
                }
            }
            g
        })
    })
}

proptest! {
    /// Mandatory entitlements never oversubscribe any physical server.
    #[test]
    fn mandatory_shares_feasible(g in graph_strategy()) {
        let lv = g.access_levels();
        prop_assert!(lv.check_mandatory_feasible(1e-6).is_ok());
    }

    /// Every principal's guaranteed (mandatory) entitlement is bounded by
    /// total system capacity, and optional entitlements are finite and
    /// non-negative. (Optional entitlements deliberately *overbook*: claims
    /// along multiple transitive paths may sum past physical capacity —
    /// they are best-effort, and the scheduling LP's capacity constraints
    /// cap actual usage.)
    #[test]
    fn mandatory_bounded_optional_sane(g in graph_strategy()) {
        let lv = g.access_levels();
        let total: f64 = g.capacities().iter().sum();
        for i in 0..g.len() {
            let p = PrincipalId(i);
            prop_assert!(lv.mandatory(p) <= total + 1e-6);
            prop_assert!(lv.mandatory(p) >= -1e-9);
            prop_assert!(lv.optional(p).is_finite());
            prop_assert!(lv.optional(p) >= -1e-9);
        }
    }

    /// Global mandatory conservation: what everyone is guaranteed in sum
    /// never exceeds physical capacity, and for graphs where every issued
    /// lb-chain terminates it is exactly the total capacity.
    #[test]
    fn mandatory_sum_never_exceeds_capacity(g in graph_strategy()) {
        let lv = g.access_levels();
        let total: f64 = g.capacities().iter().sum();
        let sum: f64 = (0..g.len()).map(|i| lv.mandatory(PrincipalId(i))).sum();
        prop_assert!(sum <= total + 1e-6, "Σ MC {sum} > ΣV {total}");
    }

    /// Bounded-path flows are monotone in the path-length cap and converge
    /// to the full closure by m = n − 1.
    #[test]
    fn bounded_flows_monotone_and_convergent(g in graph_strategy()) {
        let n = g.len();
        let full = g.flows();
        let mut prev = 0.0;
        for m in 1..n {
            let f = g.flows_bounded(m);
            let mass: f64 = (0..n)
                .flat_map(|j| (0..n).map(move |i| (j, i)))
                .map(|(j, i)| f.mt(PrincipalId(j), PrincipalId(i)))
                .sum();
            prop_assert!(mass >= prev - 1e-9, "m={m}: flow mass shrank");
            prev = mass;
        }
        let fm = g.flows_bounded(n.saturating_sub(1));
        for j in 0..n {
            for i in 0..n {
                prop_assert!(
                    (fm.mt(PrincipalId(j), PrincipalId(i)) - full.mt(PrincipalId(j), PrincipalId(i))).abs() < 1e-12
                );
            }
        }
    }

    /// Scaling access levels by a window length scales every quantity
    /// linearly.
    #[test]
    fn window_scaling_is_linear(g in graph_strategy(), w in 0.01..10.0f64) {
        let lv = g.access_levels();
        let scaled = lv.scaled(w);
        for i in 0..g.len() {
            let p = PrincipalId(i);
            prop_assert!((scaled.mandatory(p) - lv.mandatory(p) * w).abs() < 1e-6);
            prop_assert!((scaled.optional(p) - lv.optional(p) * w).abs() < 1e-6);
        }
    }

    /// Doubling every capacity doubles every entitlement (the dynamic
    /// interpretation of agreements).
    #[test]
    fn entitlements_scale_with_capacity(g in graph_strategy()) {
        let lv1 = g.access_levels();
        let mut g2 = g.clone();
        for i in 0..g.len() {
            let c = g.principal(PrincipalId(i)).capacity;
            g2.set_capacity(PrincipalId(i), c * 2.0).unwrap();
        }
        let lv2 = g2.access_levels();
        for i in 0..g.len() {
            let p = PrincipalId(i);
            prop_assert!((lv2.mandatory(p) - 2.0 * lv1.mandatory(p)).abs() < 1e-6);
            prop_assert!((lv2.optional(p) - 2.0 * lv1.optional(p)).abs() < 1e-6);
        }
    }
}
