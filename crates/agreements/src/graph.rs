//! The agreement graph: principals, capacities, and direct `[lb, ub]`
//! agreements between them.

use crate::{AccessLevels, AgreementError, Currency, FlowMatrices, FlowOptions, Fraction, Ticket};
use serde::{Deserialize, Serialize};

/// Identifier of a principal within one [`AgreementGraph`].
///
/// Ids are dense indices assigned by [`AgreementGraph::add_principal`] and
/// are used directly as row/column indices in the flow matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PrincipalId(pub usize);

impl PrincipalId {
    /// Returns the dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for PrincipalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A principal: an organization that owns resources, uses others' resources
/// via agreements, or both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Principal {
    /// Human-readable name (e.g. `"A"`, `"asp-east"`).
    pub name: String,
    /// Aggregate physical capacity `V_i`, scaled in average-request units per
    /// second. Zero for pure consumers.
    pub capacity: f64,
    /// The principal's currency.
    pub currency: Currency,
}

/// A direct agreement: principal `issuer` grants `holder` access to between
/// `lb` and `ub` of its currency value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Agreement {
    /// Resource owner (ticket issuer).
    pub issuer: PrincipalId,
    /// Resource user (ticket holder).
    pub holder: PrincipalId,
    /// Guaranteed fraction during overload.
    pub lb: Fraction,
    /// Best-effort upper bound.
    pub ub: Fraction,
}

/// The agreement graph for one sharing community or service-provider
/// deployment.
///
/// Nodes are principals; a directed edge `i → j` labelled `[lb, ub]` means
/// `j` may use between `lb` and `ub` of `i`'s currency. The graph may contain
/// cycles (mutual peer-to-peer agreements); the flow computation only follows
/// *simple* (cycle-free) transitive paths, matching the summation constraints
/// of the paper's Formulae 1–2.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AgreementGraph {
    principals: Vec<Principal>,
    agreements: Vec<Agreement>,
}

impl AgreementGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a principal with physical capacity `capacity` (units/second) and
    /// a default face-100 currency, returning its id.
    pub fn add_principal(&mut self, name: impl Into<String>, capacity: f64) -> PrincipalId {
        let id = PrincipalId(self.principals.len());
        self.principals.push(Principal {
            name: name.into(),
            capacity,
            currency: Currency::with_default_face(id.0),
        });
        id
    }

    /// Adds a principal with an explicit currency face value.
    pub fn add_principal_with_face(
        &mut self,
        name: impl Into<String>,
        capacity: f64,
        face_value: f64,
    ) -> PrincipalId {
        let id = self.add_principal(name, capacity);
        self.principals[id.0].currency.face_value = face_value;
        id
    }

    /// Adds a direct agreement `[lb, ub]` from `issuer` to `holder`.
    ///
    /// Fails if the bounds are invalid, the pair already has an agreement,
    /// either id is unknown, `issuer == holder`, or the issuer's total
    /// mandatory commitments would exceed 1.0.
    pub fn add_agreement(
        &mut self,
        issuer: PrincipalId,
        holder: PrincipalId,
        lb: f64,
        ub: f64,
    ) -> Result<(), AgreementError> {
        let (lbf, ubf) = match (Fraction::new(lb), Fraction::new(ub)) {
            (Some(l), Some(u)) if l <= u => (l, u),
            _ => return Err(AgreementError::InvalidBounds { lb, ub }),
        };
        for id in [issuer, holder] {
            if id.0 >= self.principals.len() {
                return Err(AgreementError::UnknownPrincipal(id.0));
            }
        }
        if issuer == holder {
            return Err(AgreementError::SelfAgreement(issuer.0));
        }
        if self
            .agreements
            .iter()
            .any(|a| a.issuer == issuer && a.holder == holder)
        {
            return Err(AgreementError::DuplicateAgreement { issuer: issuer.0, holder: holder.0 });
        }
        let total_lb: f64 = self
            .agreements
            .iter()
            .filter(|a| a.issuer == issuer)
            .map(|a| a.lb.get())
            .sum::<f64>()
            + lbf.get();
        if total_lb > 1.0 + 1e-9 {
            return Err(AgreementError::OverCommitted { issuer: issuer.0, total_lb });
        }
        self.agreements.push(Agreement { issuer, holder, lb: lbf, ub: ubf });
        Ok(())
    }

    /// Renegotiates the `[lb, ub]` bounds of an existing agreement (the
    /// dynamic-reinterpretation hook, §2.2: the change re-flows through
    /// the whole graph on the next [`Self::access_levels`] call).
    ///
    /// Validated like [`Self::add_agreement`]: the bounds must be a sane
    /// fraction pair and the issuer must stay solvent across its *other*
    /// agreements plus the new `lb`. A missing issuer→holder edge is
    /// reported as [`AgreementError::UnknownAgreement`].
    pub fn set_agreement(
        &mut self,
        issuer: PrincipalId,
        holder: PrincipalId,
        lb: f64,
        ub: f64,
    ) -> Result<(), AgreementError> {
        let (lbf, ubf) = match (Fraction::new(lb), Fraction::new(ub)) {
            (Some(l), Some(u)) if l <= u => (l, u),
            _ => return Err(AgreementError::InvalidBounds { lb, ub }),
        };
        let Some(idx) = self
            .agreements
            .iter()
            .position(|a| a.issuer == issuer && a.holder == holder)
        else {
            return Err(AgreementError::UnknownAgreement { issuer: issuer.0, holder: holder.0 });
        };
        let total_lb: f64 = self
            .agreements
            .iter()
            .enumerate()
            .filter(|(i, a)| *i != idx && a.issuer == issuer)
            .map(|(_, a)| a.lb.get())
            .sum::<f64>()
            + lbf.get();
        if total_lb > 1.0 + 1e-9 {
            return Err(AgreementError::OverCommitted { issuer: issuer.0, total_lb });
        }
        self.agreements[idx].lb = lbf;
        self.agreements[idx].ub = ubf;
        Ok(())
    }

    /// Number of principals.
    #[inline]
    pub fn len(&self) -> usize {
        self.principals.len()
    }

    /// True if the graph has no principals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.principals.is_empty()
    }

    /// The principal record for `id`.
    pub fn principal(&self, id: PrincipalId) -> &Principal {
        &self.principals[id.0]
    }

    /// All principals in id order.
    pub fn principals(&self) -> &[Principal] {
        &self.principals
    }

    /// All direct agreements.
    pub fn agreements(&self) -> &[Agreement] {
        &self.agreements
    }

    /// Updates a principal's physical capacity (agreements are interpreted
    /// dynamically: a capacity change re-flows through the whole graph on the
    /// next [`Self::access_levels`] call).
    pub fn set_capacity(&mut self, id: PrincipalId, capacity: f64) -> Result<(), AgreementError> {
        if !capacity.is_finite() || capacity < 0.0 {
            return Err(AgreementError::InvalidCapacity(capacity));
        }
        if id.0 >= self.principals.len() {
            return Err(AgreementError::UnknownPrincipal(id.0));
        }
        self.principals[id.0].capacity = capacity;
        Ok(())
    }

    /// The direct agreement from `issuer` to `holder`, if any.
    pub fn agreement_between(&self, issuer: PrincipalId, holder: PrincipalId) -> Option<&Agreement> {
        self.agreements
            .iter()
            .find(|a| a.issuer == issuer && a.holder == holder)
    }

    /// The capacity vector `V` in id order.
    pub fn capacities(&self) -> Vec<f64> {
        self.principals.iter().map(|p| p.capacity).collect()
    }

    /// Total mandatory fraction `Σ_k lb_ik` issued by principal `i` ("leak
    /// out" factor of Formula 1).
    pub fn mandatory_out_fraction(&self, i: PrincipalId) -> f64 {
        self.agreements
            .iter()
            .filter(|a| a.issuer == i)
            .map(|a| a.lb.get())
            .sum()
    }

    /// Materializes the ticket pairs for every agreement (Figure 3 view).
    ///
    /// Zero-face optional tickets (from `lb == ub` agreements) are omitted.
    pub fn tickets(&self) -> Vec<Ticket> {
        let mut out = Vec::with_capacity(self.agreements.len() * 2);
        for a in &self.agreements {
            let face = self.principals[a.issuer.0].currency.face_value;
            let (m, o) = Ticket::pair_for_agreement(a.issuer.0, a.holder.0, a.lb, a.ub, face);
            if m.face > 0.0 {
                out.push(m);
            }
            if o.face > 0.0 {
                out.push(o);
            }
        }
        out
    }

    /// Computes the full transitive-closure flow matrices (all simple paths).
    pub fn flows(&self) -> FlowMatrices {
        FlowMatrices::compute(self, FlowOptions::default())
    }

    /// Computes flow matrices restricted to paths of at most `m` tickets,
    /// matching the paper's `MI^(m)`/`OI^(m)` truncated recurrences.
    pub fn flows_bounded(&self, m: usize) -> FlowMatrices {
        FlowMatrices::compute(self, FlowOptions { max_path_len: Some(m) })
    }

    /// Computes per-principal and per-pair mandatory/optional access levels
    /// (the `MC_i`, `OC_i`, `MI_ki`, `OI_ki` inputs of the scheduling LPs).
    pub fn access_levels(&self) -> AccessLevels {
        AccessLevels::from_flows(self, &self.flows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure3() -> (AgreementGraph, PrincipalId, PrincipalId, PrincipalId) {
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 1000.0);
        let b = g.add_principal("B", 1500.0);
        let c = g.add_principal("C", 0.0);
        g.add_agreement(a, b, 0.4, 0.6).unwrap();
        g.add_agreement(b, c, 0.6, 1.0).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn add_principal_assigns_dense_ids() {
        let (g, a, b, c) = figure3();
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(g.len(), 3);
        assert_eq!(g.principal(b).name, "B");
        assert_eq!(g.principal(b).capacity, 1500.0);
    }

    #[test]
    fn rejects_invalid_bounds() {
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 1.0);
        let b = g.add_principal("B", 1.0);
        assert!(matches!(
            g.add_agreement(a, b, 0.6, 0.4),
            Err(AgreementError::InvalidBounds { .. })
        ));
        assert!(matches!(
            g.add_agreement(a, b, -0.1, 0.5),
            Err(AgreementError::InvalidBounds { .. })
        ));
        assert!(matches!(
            g.add_agreement(a, b, 0.5, 1.5),
            Err(AgreementError::InvalidBounds { .. })
        ));
    }

    #[test]
    fn rejects_self_agreement_and_unknown() {
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 1.0);
        assert!(matches!(
            g.add_agreement(a, a, 0.1, 0.2),
            Err(AgreementError::SelfAgreement(0))
        ));
        assert!(matches!(
            g.add_agreement(a, PrincipalId(9), 0.1, 0.2),
            Err(AgreementError::UnknownPrincipal(9))
        ));
    }

    #[test]
    fn rejects_duplicate_agreements() {
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 1.0);
        let b = g.add_principal("B", 1.0);
        g.add_agreement(a, b, 0.1, 0.2).unwrap();
        assert!(matches!(
            g.add_agreement(a, b, 0.3, 0.4),
            Err(AgreementError::DuplicateAgreement { .. })
        ));
        // Reverse direction is a distinct agreement and is fine.
        g.add_agreement(b, a, 0.3, 0.4).unwrap();
    }

    #[test]
    fn rejects_mandatory_overcommit() {
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 1.0);
        let b = g.add_principal("B", 1.0);
        let c = g.add_principal("C", 1.0);
        g.add_agreement(a, b, 0.7, 0.8).unwrap();
        assert!(matches!(
            g.add_agreement(a, c, 0.4, 0.5),
            Err(AgreementError::OverCommitted { issuer: 0, .. })
        ));
        // Optional overbooking is allowed: ub sums may exceed 1.
        g.add_agreement(a, c, 0.3, 1.0).unwrap();
    }

    #[test]
    fn mandatory_out_fraction_sums_lbs() {
        let (g, a, b, c) = figure3();
        assert!((g.mandatory_out_fraction(a) - 0.4).abs() < 1e-12);
        assert!((g.mandatory_out_fraction(b) - 0.6).abs() < 1e-12);
        assert_eq!(g.mandatory_out_fraction(c), 0.0);
    }

    #[test]
    fn tickets_match_figure_3_faces() {
        let (g, ..) = figure3();
        let tickets = g.tickets();
        // M-Ticket1 40, O-Ticket2 20, M-Ticket3 60, O-Ticket4 40.
        let faces: Vec<f64> = tickets.iter().map(|t| t.face).collect();
        assert_eq!(faces.len(), 4);
        assert!((faces[0] - 40.0).abs() < 1e-9);
        assert!((faces[1] - 20.0).abs() < 1e-9);
        assert!((faces[2] - 60.0).abs() < 1e-9);
        assert!((faces[3] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn set_capacity_validates() {
        let (mut g, a, ..) = figure3();
        g.set_capacity(a, 2000.0).unwrap();
        assert_eq!(g.principal(a).capacity, 2000.0);
        assert!(matches!(
            g.set_capacity(a, -1.0),
            Err(AgreementError::InvalidCapacity(_))
        ));
        assert!(matches!(
            g.set_capacity(PrincipalId(42), 1.0),
            Err(AgreementError::UnknownPrincipal(42))
        ));
    }

    #[test]
    fn agreement_between_finds_directed_edge() {
        let (g, a, b, c) = figure3();
        assert!(g.agreement_between(a, b).is_some());
        assert!(g.agreement_between(b, a).is_none());
        assert!(g.agreement_between(a, c).is_none());
    }
}
