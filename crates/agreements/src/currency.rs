//! Currencies: per-principal denominations whose real value floats with the
//! physical resources (and inbound tickets) backing them.

use serde::{Deserialize, Serialize};

/// A principal's currency.
///
/// The *face value* is an arbitrary denomination (the paper uses 100 so that
/// ticket faces read as percentages); inflating or deflating the face value
/// is how agreements are renegotiated without rewriting tickets. The *real
/// value* is determined by physical resources plus inbound ticket flows and
/// is computed by [`crate::FlowMatrices`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Currency {
    /// Owning principal.
    pub owner: usize,
    /// Denomination used for ticket face values.
    pub face_value: f64,
}

impl Currency {
    /// A currency with the paper's conventional face value of 100.
    pub fn with_default_face(owner: usize) -> Self {
        Currency { owner, face_value: 100.0 }
    }

    /// Converts a ticket face value (in this currency's units) to the
    /// fraction of the currency it represents.
    #[inline]
    pub fn fraction_of(&self, face: f64) -> f64 {
        face / self.face_value
    }
}

/// The real (mandatory, optional) value of a currency after accounting for
/// all inbound and outbound ticket flows.
///
/// For a principal `i` this is the pair `(MC_i, OC_i)` of the paper: the
/// mandatory amount guarantees `i` service even under global overload; the
/// optional amount is additionally available when other principals leave
/// their reservations idle.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CurrencyValue {
    /// Guaranteed (mandatory) resource units per second.
    pub mandatory: f64,
    /// Best-effort (optional) resource units per second, beyond mandatory.
    pub optional: f64,
}

impl CurrencyValue {
    /// Total resource visibility: mandatory plus optional.
    #[inline]
    pub fn total(&self) -> f64 {
        self.mandatory + self.optional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_of_uses_face_value() {
        let c = Currency { owner: 0, face_value: 250.0 };
        assert!((c.fraction_of(50.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn default_face_is_100() {
        let c = Currency::with_default_face(9);
        assert_eq!(c.owner, 9);
        assert_eq!(c.face_value, 100.0);
        assert!((c.fraction_of(40.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn currency_value_total() {
        let v = CurrencyValue { mandatory: 760.0, optional: 1340.0 };
        assert!((v.total() - 2100.0).abs() < 1e-12);
    }
}
