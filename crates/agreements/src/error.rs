//! Error type for agreement-graph construction and validation.

use std::fmt;

/// Errors raised while building or validating an [`crate::AgreementGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum AgreementError {
    /// An agreement bound was outside `[0, 1]` or `lb > ub`.
    InvalidBounds {
        /// Lower bound supplied.
        lb: f64,
        /// Upper bound supplied.
        ub: f64,
    },
    /// A principal issued mandatory tickets summing to more than its whole
    /// currency (`Σ_k lb_ik > 1`), which would let it guarantee away more
    /// resource than it has.
    OverCommitted {
        /// Index of the over-committed issuer.
        issuer: usize,
        /// Total of mandatory fractions issued.
        total_lb: f64,
    },
    /// An agreement referenced a principal id not present in the graph.
    UnknownPrincipal(usize),
    /// A self-agreement (`i` with `i`) was supplied; ownership of one's own
    /// resources is implicit and must not be expressed as an agreement.
    SelfAgreement(usize),
    /// A duplicate agreement between the same ordered pair was supplied.
    DuplicateAgreement {
        /// Issuer index.
        issuer: usize,
        /// Holder index.
        holder: usize,
    },
    /// A physical capacity was negative or non-finite.
    InvalidCapacity(f64),
    /// A renegotiation targeted an issuer→holder pair with no existing
    /// agreement.
    UnknownAgreement {
        /// Issuer index.
        issuer: usize,
        /// Holder index.
        holder: usize,
    },
}

impl fmt::Display for AgreementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgreementError::InvalidBounds { lb, ub } => {
                write!(f, "invalid agreement bounds [lb={lb}, ub={ub}]; need 0 <= lb <= ub <= 1")
            }
            AgreementError::OverCommitted { issuer, total_lb } => write!(
                f,
                "principal {issuer} issues mandatory tickets totalling {total_lb} > 1.0 of its currency"
            ),
            AgreementError::UnknownPrincipal(id) => write!(f, "unknown principal id {id}"),
            AgreementError::SelfAgreement(id) => {
                write!(f, "principal {id} cannot hold an agreement with itself")
            }
            AgreementError::DuplicateAgreement { issuer, holder } => {
                write!(f, "duplicate agreement from {issuer} to {holder}")
            }
            AgreementError::InvalidCapacity(v) => {
                write!(f, "capacity must be finite and non-negative, got {v}")
            }
            AgreementError::UnknownAgreement { issuer, holder } => {
                write!(f, "no agreement from {issuer} to {holder} to renegotiate")
            }
        }
    }
}

impl std::error::Error for AgreementError {}
