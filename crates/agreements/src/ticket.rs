//! Tickets: the unit of rights transfer between currencies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fraction in `[0, 1]`, validated at construction.
///
/// Agreement bounds and ticket face values (normalized by the issuing
/// currency's face value) are fractions; keeping them in a newtype makes the
/// `[lb, ub]` invariants explicit at the type level.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Fraction(f64);

impl Fraction {
    /// Creates a fraction, returning `None` unless `0 <= v <= 1` and finite.
    pub fn new(v: f64) -> Option<Self> {
        if v.is_finite() && (0.0..=1.0).contains(&v) {
            Some(Fraction(v))
        } else {
            None
        }
    }

    /// The zero fraction.
    pub const ZERO: Fraction = Fraction(0.0);
    /// The unit fraction.
    pub const ONE: Fraction = Fraction(1.0);

    /// Returns the inner value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Whether a ticket conveys guaranteed (mandatory) or best-effort (optional)
/// access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TicketKind {
    /// Corresponds to the lower bound `lb` of an agreement: access guaranteed
    /// even during overload (though usable by others while idle).
    Mandatory,
    /// Corresponds to `ub - lb`: access available only when the issuer's
    /// resources are not otherwise claimed.
    Optional,
}

/// A ticket: a transfer of rights from an issuing currency to a holder.
///
/// A ticket's *face value* is expressed in units of the issuing currency's
/// face value; its *real value* is `face/issuer_face × issuer_real_value` and
/// is computed by the flow machinery in [`crate::FlowMatrices`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ticket {
    /// Principal whose currency denominates (and funds) this ticket.
    pub issuer: usize,
    /// Principal whose currency this ticket contributes value to.
    pub holder: usize,
    /// Mandatory or optional.
    pub kind: TicketKind,
    /// Face value in issuer-currency units.
    pub face: f64,
}

impl Ticket {
    /// Builds the (mandatory, optional) ticket pair representing an
    /// agreement `[lb, ub]` under an issuing currency of face value `face`.
    ///
    /// The mandatory ticket carries `lb × face`; the optional ticket carries
    /// `(ub - lb) × face`. An optional ticket of zero face is still returned
    /// (callers may filter) so that the pair structure is uniform.
    pub fn pair_for_agreement(
        issuer: usize,
        holder: usize,
        lb: Fraction,
        ub: Fraction,
        face: f64,
    ) -> (Ticket, Ticket) {
        let mandatory = Ticket {
            issuer,
            holder,
            kind: TicketKind::Mandatory,
            face: lb.get() * face,
        };
        let optional = Ticket {
            issuer,
            holder,
            kind: TicketKind::Optional,
            face: (ub.get() - lb.get()) * face,
        };
        (mandatory, optional)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_rejects_out_of_range() {
        assert!(Fraction::new(-0.1).is_none());
        assert!(Fraction::new(1.1).is_none());
        assert!(Fraction::new(f64::NAN).is_none());
        assert!(Fraction::new(f64::INFINITY).is_none());
        assert_eq!(Fraction::new(0.0), Some(Fraction::ZERO));
        assert_eq!(Fraction::new(1.0), Some(Fraction::ONE));
    }

    #[test]
    fn ticket_pair_faces_match_figure_3() {
        // A's agreement [0.4, 0.6] with B under a face-100 currency yields
        // M-Ticket1 (40) and O-Ticket2 (20).
        let (m, o) = Ticket::pair_for_agreement(
            0,
            1,
            Fraction::new(0.4).unwrap(),
            Fraction::new(0.6).unwrap(),
            100.0,
        );
        assert_eq!(m.kind, TicketKind::Mandatory);
        assert!((m.face - 40.0).abs() < 1e-9);
        assert_eq!(o.kind, TicketKind::Optional);
        assert!((o.face - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_width_agreement_has_zero_optional_face() {
        let half = Fraction::new(0.5).unwrap();
        let (m, o) = Ticket::pair_for_agreement(3, 7, half, half, 200.0);
        assert!((m.face - 100.0).abs() < 1e-9);
        assert_eq!(o.face, 0.0);
    }
}
