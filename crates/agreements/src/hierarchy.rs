//! Hierarchical agreement structures (§2.1: "When a sub-ASP resells ASP
//! services to its own customers, hierarchical agreement structures
//! emerge").
//!
//! Hierarchies need no new enforcement machinery — transitive ticket flow
//! already carries resources down a resale chain — but they benefit from a
//! dedicated construction API that captures the *shape* (who resells whose
//! capacity to whom) and answers the questions a reseller actually asks:
//!
//! * what effective `[lb, ub]` SLA does a leaf customer end up with,
//!   relative to the root provider's physical capacity?
//! * is a reseller *solvent* — has it guaranteed its customers no more than
//!   its own guaranteed inflow?
//! * what does the flattened [`AgreementGraph`] look like, for enforcement?

use crate::{AgreementError, AgreementGraph, PrincipalId};

/// A node's role in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Owns physical capacity (the root ASP, or any capacity contributor).
    Provider,
    /// Buys capacity from a parent and resells it downward.
    Reseller,
    /// Buys capacity for its own clients; a leaf.
    Customer,
}

/// Builder for resale hierarchies on top of [`AgreementGraph`].
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    graph: AgreementGraph,
    roles: Vec<Role>,
    parent: Vec<Option<PrincipalId>>,
}

impl Hierarchy {
    /// Empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a root provider with physical capacity.
    pub fn provider(&mut self, name: impl Into<String>, capacity: f64) -> PrincipalId {
        let id = self.graph.add_principal(name, capacity);
        self.roles.push(Role::Provider);
        self.parent.push(None);
        id
    }

    /// Adds a reseller buying `[lb, ub]` of `parent`'s currency.
    pub fn reseller(
        &mut self,
        name: impl Into<String>,
        parent: PrincipalId,
        lb: f64,
        ub: f64,
    ) -> Result<PrincipalId, AgreementError> {
        let id = self.graph.add_principal(name, 0.0);
        self.graph.add_agreement(parent, id, lb, ub)?;
        self.roles.push(Role::Reseller);
        self.parent.push(Some(parent));
        Ok(id)
    }

    /// Adds a leaf customer buying `[lb, ub]` of `parent`'s currency.
    pub fn customer(
        &mut self,
        name: impl Into<String>,
        parent: PrincipalId,
        lb: f64,
        ub: f64,
    ) -> Result<PrincipalId, AgreementError> {
        let id = self.graph.add_principal(name, 0.0);
        self.graph.add_agreement(parent, id, lb, ub)?;
        self.roles.push(Role::Customer);
        self.parent.push(Some(parent));
        Ok(id)
    }

    /// The flattened agreement graph (what the schedulers consume).
    pub fn graph(&self) -> &AgreementGraph {
        &self.graph
    }

    /// A node's role.
    pub fn role(&self, id: PrincipalId) -> Role {
        self.roles[id.0]
    }

    /// A node's parent in the resale tree.
    pub fn parent(&self, id: PrincipalId) -> Option<PrincipalId> {
        self.parent[id.0]
    }

    /// Depth of a node (providers are at depth 0).
    pub fn depth(&self, id: PrincipalId) -> usize {
        let mut d = 0;
        let mut at = id;
        while let Some(p) = self.parent[at.0] {
            d += 1;
            at = p;
        }
        d
    }

    /// The effective end-to-end SLA of `id` against the *root's physical
    /// capacity*: the chain product of lower bounds (guaranteed) and upper
    /// bounds (ceiling) along the resale path. For `[0.4,0.6]` resold as
    /// `[0.5,0.8]`, the leaf's effective SLA is `[0.20, 0.48]`.
    pub fn effective_sla(&self, id: PrincipalId) -> (f64, f64) {
        let mut lb = 1.0;
        let mut ub = 1.0;
        let mut at = id;
        while let Some(p) = self.parent[at.0] {
            let a = self
                .graph
                .agreement_between(p, at)
                .expect("hierarchy edges are agreements");
            lb *= a.lb.get();
            ub *= a.ub.get();
            at = p;
        }
        (lb, ub)
    }

    /// The root provider above `id`.
    pub fn root_of(&self, id: PrincipalId) -> PrincipalId {
        let mut at = id;
        while let Some(p) = self.parent[at.0] {
            at = p;
        }
        at
    }

    /// Guaranteed units/second a node is entitled to, end to end.
    pub fn guaranteed_rate(&self, id: PrincipalId) -> f64 {
        let root = self.root_of(id);
        let (lb, _) = self.effective_sla(id);
        lb * self.graph.principal(root).capacity
    }

    /// Checks reseller solvency: every non-leaf node must not have promised
    /// (as mandatory) more of its currency than it holds — which the
    /// per-issuer `Σ lb ≤ 1` rule already enforces structurally — *and*
    /// every node's guaranteed inflow must be positive if it has guaranteed
    /// anything downstream. Returns the first insolvent node, if any.
    pub fn check_solvency(&self) -> Result<(), PrincipalId> {
        for i in 0..self.graph.len() {
            let id = PrincipalId(i);
            let promised: f64 = self.graph.mandatory_out_fraction(id);
            if promised > 0.0 && self.roles[i] != Role::Provider {
                let (lb, _) = self.effective_sla(id);
                let root_cap = self.graph.principal(self.root_of(id)).capacity;
                if lb * root_cap <= 0.0 {
                    return Err(id);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ASP (1000 u/s) → sub-ASP [0.4, 0.6] → customer [0.5, 0.8].
    fn chain() -> (Hierarchy, PrincipalId, PrincipalId, PrincipalId) {
        let mut h = Hierarchy::new();
        let asp = h.provider("asp", 1000.0);
        let sub = h.reseller("sub-asp", asp, 0.4, 0.6).unwrap();
        let cust = h.customer("customer", sub, 0.5, 0.8).unwrap();
        (h, asp, sub, cust)
    }

    #[test]
    fn roles_and_structure() {
        let (h, asp, sub, cust) = chain();
        assert_eq!(h.role(asp), Role::Provider);
        assert_eq!(h.role(sub), Role::Reseller);
        assert_eq!(h.role(cust), Role::Customer);
        assert_eq!(h.parent(cust), Some(sub));
        assert_eq!(h.root_of(cust), asp);
        assert_eq!(h.depth(asp), 0);
        assert_eq!(h.depth(cust), 2);
    }

    #[test]
    fn effective_sla_is_chain_product() {
        let (h, _asp, sub, cust) = chain();
        let (lb, ub) = h.effective_sla(cust);
        assert!((lb - 0.2).abs() < 1e-12);
        assert!((ub - 0.48).abs() < 1e-12);
        let (lb, ub) = h.effective_sla(sub);
        assert!((lb - 0.4).abs() < 1e-12);
        assert!((ub - 0.6).abs() < 1e-12);
        assert!((h.guaranteed_rate(cust) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn flattened_graph_agrees_with_flow_computation() {
        // The hierarchy's effective guarantee must equal the generic
        // transitive-flow mandatory entitlement.
        let (h, _asp, _sub, cust) = chain();
        let lv = h.graph().access_levels();
        assert!((lv.mandatory(cust) - h.guaranteed_rate(cust)).abs() < 1e-9);
    }

    #[test]
    fn multi_level_fan_out() {
        let mut h = Hierarchy::new();
        let asp = h.provider("asp", 800.0);
        let r1 = h.reseller("r1", asp, 0.5, 0.7).unwrap();
        let r2 = h.reseller("r2", asp, 0.3, 0.5).unwrap();
        let c1 = h.customer("c1", r1, 0.6, 1.0).unwrap();
        let c2 = h.customer("c2", r2, 1.0, 1.0).unwrap();
        assert!((h.guaranteed_rate(c1) - 0.5 * 0.6 * 800.0).abs() < 1e-9);
        assert!((h.guaranteed_rate(c2) - 0.3 * 800.0).abs() < 1e-9);
        h.check_solvency().unwrap();
        // Enforcement view: all guarantees simultaneously satisfiable.
        h.graph().access_levels().check_mandatory_feasible(1e-9).unwrap();
    }

    #[test]
    fn over_resale_rejected_by_budget_rule() {
        let mut h = Hierarchy::new();
        let asp = h.provider("asp", 100.0);
        let sub = h.reseller("sub", asp, 0.5, 0.5).unwrap();
        h.customer("c1", sub, 0.7, 0.9).unwrap();
        // Sub has 0.3 of its currency left to promise; 0.4 more must fail.
        let err = h.customer("c2", sub, 0.4, 0.5);
        assert!(matches!(err, Err(AgreementError::OverCommitted { .. })));
    }
}
