//! Multiple resource types (§3.1.1: "In case of multiple resource types,
//! above quantities should be represented as vectors").
//!
//! A [`MultiAgreementGraph`] tracks one capacity entry per principal per
//! *resource kind* (CPU share, network bandwidth, transaction rate, …) and
//! per-kind `[lb, ub]` bounds on each agreement. Internally it is a bundle
//! of per-kind [`AgreementGraph`]s over one shared principal set; the flow
//! computation runs independently per kind, because tickets denominate
//! fractions of a currency and each kind has its own currency backing.
//!
//! The scheduler-facing output is a [`MultiAccessLevels`]: one
//! [`AccessLevels`] table per kind, plus helpers that translate a request's
//! *cost vector* (how much of each resource one request consumes) into the
//! binding entitlement across kinds.

use crate::{AccessLevels, AgreementError, AgreementGraph, PrincipalId};
use serde::{Deserialize, Serialize};

/// Identifier of a resource kind within one [`MultiAgreementGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceKind(pub usize);

/// Per-kind quantities (capacities, costs, entitlements).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceVector(pub Vec<f64>);

impl ResourceVector {
    /// A uniform vector.
    pub fn uniform(value: f64, kinds: usize) -> Self {
        ResourceVector(vec![value; kinds])
    }

    /// Number of kinds.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// An agreement graph over several resource kinds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiAgreementGraph {
    kind_names: Vec<String>,
    /// One single-resource graph per kind, over the same principal ids.
    graphs: Vec<AgreementGraph>,
    n_principals: usize,
}

impl MultiAgreementGraph {
    /// Creates a graph over the named resource kinds.
    pub fn new(kinds: &[&str]) -> Self {
        assert!(!kinds.is_empty(), "need at least one resource kind");
        MultiAgreementGraph {
            kind_names: kinds.iter().map(|s| s.to_string()).collect(),
            graphs: kinds.iter().map(|_| AgreementGraph::new()).collect(),
            n_principals: 0,
        }
    }

    /// Number of resource kinds.
    pub fn n_kinds(&self) -> usize {
        self.kind_names.len()
    }

    /// Kind names in id order.
    pub fn kind_names(&self) -> &[String] {
        &self.kind_names
    }

    /// Number of principals.
    pub fn len(&self) -> usize {
        self.n_principals
    }

    /// True when no principals exist.
    pub fn is_empty(&self) -> bool {
        self.n_principals == 0
    }

    /// Adds a principal with a capacity per kind.
    pub fn add_principal(
        &mut self,
        name: impl Into<String>,
        capacities: ResourceVector,
    ) -> PrincipalId {
        assert_eq!(
            capacities.len(),
            self.n_kinds(),
            "capacity vector must cover every resource kind"
        );
        let name = name.into();
        let mut id = PrincipalId(0);
        for (g, &cap) in self.graphs.iter_mut().zip(&capacities.0) {
            id = g.add_principal(name.clone(), cap);
        }
        self.n_principals += 1;
        id
    }

    /// Adds an agreement with uniform `[lb, ub]` across every kind (the
    /// common case: "40–60% of my resources").
    pub fn add_agreement(
        &mut self,
        issuer: PrincipalId,
        holder: PrincipalId,
        lb: f64,
        ub: f64,
    ) -> Result<(), AgreementError> {
        for g in &mut self.graphs {
            g.add_agreement(issuer, holder, lb, ub)?;
        }
        Ok(())
    }

    /// Adds an agreement with distinct bounds per kind (e.g. generous CPU,
    /// scarce bandwidth).
    pub fn add_agreement_per_kind(
        &mut self,
        issuer: PrincipalId,
        holder: PrincipalId,
        bounds: &[(f64, f64)],
    ) -> Result<(), AgreementError> {
        assert_eq!(bounds.len(), self.n_kinds(), "one bound pair per kind");
        // Validate all kinds before mutating any, to keep the bundle
        // consistent on failure.
        for (g, &(lb, ub)) in self.graphs.iter().zip(bounds) {
            let mut probe = g.clone();
            probe.add_agreement(issuer, holder, lb, ub)?;
        }
        for (g, &(lb, ub)) in self.graphs.iter_mut().zip(bounds) {
            g.add_agreement(issuer, holder, lb, ub).expect("validated above");
        }
        Ok(())
    }

    /// The per-kind single-resource view.
    pub fn kind(&self, k: ResourceKind) -> &AgreementGraph {
        &self.graphs[k.0]
    }

    /// Computes access levels for every kind.
    pub fn access_levels(&self) -> MultiAccessLevels {
        MultiAccessLevels {
            per_kind: self.graphs.iter().map(|g| g.access_levels()).collect(),
        }
    }
}

/// Per-kind access-level tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiAccessLevels {
    per_kind: Vec<AccessLevels>,
}

impl MultiAccessLevels {
    /// The table for one kind.
    pub fn kind(&self, k: ResourceKind) -> &AccessLevels {
        &self.per_kind[k.0]
    }

    /// Number of kinds.
    pub fn n_kinds(&self) -> usize {
        self.per_kind.len()
    }

    /// Number of principals.
    pub fn len(&self) -> usize {
        self.per_kind.first().map_or(0, |l| l.len())
    }

    /// True when no principals exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The guaranteed *request rate* for principal `i` whose requests each
    /// consume `cost` of every kind: the binding (minimum) entitlement
    /// across kinds. A request needs all its resources, so the scarcest
    /// kind limits the rate.
    pub fn mandatory_rate(&self, i: PrincipalId, cost: &ResourceVector) -> f64 {
        self.rate_over(cost, |lv| lv.mandatory(i))
    }

    /// The best-effort ceiling rate (mandatory + optional), binding across
    /// kinds.
    pub fn ceiling_rate(&self, i: PrincipalId, cost: &ResourceVector) -> f64 {
        self.rate_over(cost, |lv| lv.mandatory(i) + lv.optional(i))
    }

    fn rate_over(&self, cost: &ResourceVector, f: impl Fn(&AccessLevels) -> f64) -> f64 {
        assert_eq!(cost.len(), self.n_kinds());
        self.per_kind
            .iter()
            .zip(&cost.0)
            .map(|(lv, &c)| {
                if c <= 0.0 {
                    f64::INFINITY
                } else {
                    f(lv) / c
                }
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The kind that limits principal `i`'s mandatory rate under `cost`
    /// (useful for capacity planning diagnostics).
    pub fn binding_kind(&self, i: PrincipalId, cost: &ResourceVector) -> Option<ResourceKind> {
        assert_eq!(cost.len(), self.n_kinds());
        self.per_kind
            .iter()
            .zip(&cost.0)
            .enumerate()
            .filter(|(_, (_, &c))| c > 0.0)
            .map(|(k, (lv, &c))| (k, lv.mandatory(PrincipalId(i.0)) / c))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite rates"))
            .map(|(k, _)| ResourceKind(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CPU + bandwidth system: server has plenty of CPU, scarce bandwidth.
    fn cpu_bw() -> (MultiAgreementGraph, PrincipalId, PrincipalId) {
        let mut g = MultiAgreementGraph::new(&["cpu", "bandwidth"]);
        let s = g.add_principal("S", ResourceVector(vec![1000.0, 100.0]));
        let a = g.add_principal("A", ResourceVector(vec![0.0, 0.0]));
        g.add_agreement(s, a, 0.5, 1.0).unwrap();
        (g, s, a)
    }

    #[test]
    fn per_kind_levels_computed_independently() {
        let (g, _s, a) = cpu_bw();
        let lv = g.access_levels();
        assert_eq!(lv.n_kinds(), 2);
        assert!((lv.kind(ResourceKind(0)).mandatory(a) - 500.0).abs() < 1e-9);
        assert!((lv.kind(ResourceKind(1)).mandatory(a) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn binding_kind_is_the_scarce_one() {
        let (g, _s, a) = cpu_bw();
        let lv = g.access_levels();
        // Each request: 1 cpu unit, 1 bandwidth unit → bandwidth binds.
        let cost = ResourceVector::uniform(1.0, 2);
        assert!((lv.mandatory_rate(a, &cost) - 50.0).abs() < 1e-9);
        assert_eq!(lv.binding_kind(a, &cost), Some(ResourceKind(1)));
        // CPU-heavy requests: 20 cpu, 0.1 bw → cpu binds (500/20 = 25).
        let cost = ResourceVector(vec![20.0, 0.1]);
        assert!((lv.mandatory_rate(a, &cost) - 25.0).abs() < 1e-9);
        assert_eq!(lv.binding_kind(a, &cost), Some(ResourceKind(0)));
    }

    #[test]
    fn ceiling_uses_optional_headroom() {
        let (g, _s, a) = cpu_bw();
        let lv = g.access_levels();
        let cost = ResourceVector::uniform(1.0, 2);
        // ub = 1.0: A may burst to the whole server on both kinds.
        assert!((lv.ceiling_rate(a, &cost) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn per_kind_bounds() {
        let mut g = MultiAgreementGraph::new(&["cpu", "bw"]);
        let s = g.add_principal("S", ResourceVector(vec![100.0, 100.0]));
        let a = g.add_principal("A", ResourceVector(vec![0.0, 0.0]));
        g.add_agreement_per_kind(s, a, &[(0.8, 1.0), (0.1, 0.2)]).unwrap();
        let lv = g.access_levels();
        assert!((lv.kind(ResourceKind(0)).mandatory(a) - 80.0).abs() < 1e-9);
        assert!((lv.kind(ResourceKind(1)).mandatory(a) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn per_kind_validation_is_atomic() {
        let mut g = MultiAgreementGraph::new(&["cpu", "bw"]);
        let s = g.add_principal("S", ResourceVector(vec![100.0, 100.0]));
        let a = g.add_principal("A", ResourceVector(vec![0.0, 0.0]));
        let b = g.add_principal("B", ResourceVector(vec![0.0, 0.0]));
        g.add_agreement_per_kind(s, a, &[(0.5, 1.0), (0.9, 1.0)]).unwrap();
        // Second agreement over-commits bw (0.9 + 0.2 > 1) but cpu is fine:
        // the whole call must fail and leave no partial state.
        let err = g.add_agreement_per_kind(s, b, &[(0.3, 0.4), (0.2, 0.3)]);
        assert!(err.is_err());
        assert_eq!(g.kind(ResourceKind(0)).agreements().len(), 1);
        assert_eq!(g.kind(ResourceKind(1)).agreements().len(), 1);
    }

    #[test]
    fn zero_cost_kind_never_binds() {
        let (g, _s, a) = cpu_bw();
        let lv = g.access_levels();
        let cost = ResourceVector(vec![1.0, 0.0]); // pure-CPU request
        assert!((lv.mandatory_rate(a, &cost) - 500.0).abs() < 1e-9);
        assert_eq!(lv.binding_kind(a, &cost), Some(ResourceKind(0)));
    }

    #[test]
    fn transitive_flow_per_kind() {
        // A -> B chain on both kinds with different splits.
        let mut g = MultiAgreementGraph::new(&["cpu", "bw"]);
        let a = g.add_principal("A", ResourceVector(vec![1000.0, 10.0]));
        let b = g.add_principal("B", ResourceVector(vec![0.0, 0.0]));
        let c = g.add_principal("C", ResourceVector(vec![0.0, 0.0]));
        g.add_agreement(a, b, 0.4, 0.4).unwrap();
        g.add_agreement(b, c, 0.5, 0.5).unwrap();
        let lv = g.access_levels();
        // C mandatorily gets 0.4×0.5 = 20% of each of A's capacities.
        assert!((lv.kind(ResourceKind(0)).mandatory(c) - 200.0).abs() < 1e-9);
        assert!((lv.kind(ResourceKind(1)).mandatory(c) - 2.0).abs() < 1e-9);
    }
}
