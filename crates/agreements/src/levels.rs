//! Per-principal and per-pair access levels (paper Formulae 3–4).
//!
//! Reduces the flow matrices to the quantities the scheduling LPs consume:
//!
//! * `mand_share(i, j)` — the amount of `j`'s *physical* capacity that
//!   principal `i` is mandatorily entitled to: the flow `V_j × MT_ji`
//!   retained at `i` (scaled by `1 − Σ_k lb_ik`, the part `i` does not pass
//!   along). Per physical server `j`, `Σ_i mand_share(i, j) ≤ V_j`.
//! * `opt_share(i, j)` — the optional entitlement: optional in-flows
//!   `V_j × OT_ji` plus the mandatory flow that arrived at `i` but was passed
//!   on to others (reserved for them, usable by `i` while they are idle).
//!   Optional shares may oversubscribe a server; they are best-effort.
//! * `MC_i = Σ_j mand_share(i, j)` and `OC_i = Σ_j opt_share(i, j)` — the
//!   final (mandatory, optional) remaining value of `i`'s currency.

use crate::{AgreementGraph, CurrencyValue, FlowMatrices, PrincipalId};
use serde::{Deserialize, Serialize};

/// The scheduler-facing view of an agreement graph: who may use how much of
/// whose physical capacity, in guaranteed and best-effort tiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessLevels {
    n: usize,
    /// `mand[i][j]`: mandatory entitlement of principal `i` on server `j`.
    mand: Vec<Vec<f64>>,
    /// `opt[i][j]`: optional entitlement of principal `i` on server `j`.
    opt: Vec<Vec<f64>>,
    /// Physical capacities `V_j` the table was computed for.
    capacities: Vec<f64>,
}

impl AccessLevels {
    /// Derives access levels from precomputed flow matrices and the graph's
    /// current capacities.
    pub fn from_flows(graph: &AgreementGraph, flows: &FlowMatrices) -> Self {
        let v = graph.capacities();
        Self::from_flows_with_capacities(flows, &v)
    }

    /// Same as [`Self::from_flows`] but with an explicit capacity vector
    /// (agreements are interpreted dynamically; capacities may fluctuate
    /// without re-running the path enumeration).
    pub fn from_flows_with_capacities(flows: &FlowMatrices, v: &[f64]) -> Self {
        let n = flows.len();
        assert_eq!(v.len(), n, "capacity vector length must match principal count");
        let mut mand = vec![vec![0.0; n]; n];
        let mut opt = vec![vec![0.0; n]; n];
        for i in 0..n {
            let keep = 1.0 - flows.out_fraction(PrincipalId(i));
            let leak = flows.out_fraction(PrincipalId(i));
            for j in 0..n {
                let mi = v[j] * flows.mt(PrincipalId(j), PrincipalId(i));
                let oi = v[j] * flows.ot(PrincipalId(j), PrincipalId(i));
                mand[i][j] = mi * keep;
                // Optional = optional in-flow + reusable mandatory out-flow.
                opt[i][j] = oi + mi * leak;
            }
        }
        AccessLevels { n, mand, opt, capacities: v.to_vec() }
    }

    /// Number of principals.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no principals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mandatory entitlement of principal `i` on server `j` (the LP's
    /// pairwise lower bound `MI_ji`).
    #[inline]
    pub fn mand_share(&self, i: PrincipalId, j: PrincipalId) -> f64 {
        self.mand[i.0][j.0]
    }

    /// Optional entitlement of principal `i` on server `j` (the LP's
    /// pairwise slack `OI_ji`).
    #[inline]
    pub fn opt_share(&self, i: PrincipalId, j: PrincipalId) -> f64 {
        self.opt[i.0][j.0]
    }

    /// `MC_i`: total guaranteed processing rate for principal `i`.
    pub fn mandatory(&self, i: PrincipalId) -> f64 {
        self.mand[i.0].iter().sum()
    }

    /// `OC_i`: total additional best-effort processing rate for `i`.
    pub fn optional(&self, i: PrincipalId) -> f64 {
        self.opt[i.0].iter().sum()
    }

    /// `(MC_i, OC_i)` as a [`CurrencyValue`].
    pub fn currency_value(&self, i: PrincipalId) -> CurrencyValue {
        CurrencyValue { mandatory: self.mandatory(i), optional: self.optional(i) }
    }

    /// The capacity vector the table was computed against.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Scales every entitlement by `window_secs`, converting rates
    /// (requests/second) into per-window request budgets.
    pub fn scaled(&self, window_secs: f64) -> AccessLevels {
        let scale = |m: &Vec<Vec<f64>>| {
            m.iter()
                .map(|row| row.iter().map(|x| x * window_secs).collect())
                .collect()
        };
        AccessLevels {
            n: self.n,
            mand: scale(&self.mand),
            opt: scale(&self.opt),
            capacities: self.capacities.iter().map(|c| c * window_secs).collect(),
        }
    }

    /// Verifies the physical soundness invariant: per server `j`, the sum of
    /// mandatory entitlements does not exceed `V_j` (within `tol`). Returns
    /// the worst violation if any.
    pub fn check_mandatory_feasible(&self, tol: f64) -> Result<(), (usize, f64)> {
        for j in 0..self.n {
            let total: f64 = (0..self.n).map(|i| self.mand[i][j]).sum();
            if total > self.capacities[j] + tol {
                return Err((j, total - self.capacities[j]));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AgreementGraph;

    fn figure3() -> (AgreementGraph, PrincipalId, PrincipalId, PrincipalId) {
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 1000.0);
        let b = g.add_principal("B", 1500.0);
        let c = g.add_principal("C", 0.0);
        g.add_agreement(a, b, 0.4, 0.6).unwrap();
        g.add_agreement(b, c, 0.6, 1.0).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn figure3_final_currency_values() {
        let (g, a, b, c) = figure3();
        let lv = g.access_levels();
        // Paper: (600,400) for A, (760,1340) for B, (1140,960) for C.
        assert!((lv.mandatory(a) - 600.0).abs() < 1e-9);
        assert!((lv.optional(a) - 400.0).abs() < 1e-9);
        assert!((lv.mandatory(b) - 760.0).abs() < 1e-9);
        assert!((lv.optional(b) - 1340.0).abs() < 1e-9);
        assert!((lv.mandatory(c) - 1140.0).abs() < 1e-9);
        assert!((lv.optional(c) - 960.0).abs() < 1e-9);
    }

    #[test]
    fn figure3_pairwise_physical_decomposition() {
        let (g, a, b, c) = figure3();
        let lv = g.access_levels();
        // C's mandatory 1140 decomposes physically: 900 on B, 240 on A.
        assert!((lv.mand_share(c, b) - 900.0).abs() < 1e-9);
        assert!((lv.mand_share(c, a) - 240.0).abs() < 1e-9);
        // B keeps 600 of its own server and 160 of A's.
        assert!((lv.mand_share(b, b) - 600.0).abs() < 1e-9);
        assert!((lv.mand_share(b, a) - 160.0).abs() < 1e-9);
        // Optional: B gets 440 on A (200 direct + 240 reuse) and 900 on B.
        assert!((lv.opt_share(b, a) - 440.0).abs() < 1e-9);
        assert!((lv.opt_share(b, b) - 900.0).abs() < 1e-9);
        // C's optional: 360 on A, 600 on B.
        assert!((lv.opt_share(c, a) - 360.0).abs() < 1e-9);
        assert!((lv.opt_share(c, b) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn mandatory_shares_partition_each_server() {
        let (g, a, b, ..) = figure3();
        let lv = g.access_levels();
        lv.check_mandatory_feasible(1e-9).unwrap();
        // For this acyclic graph the partition is exact.
        let n = g.len();
        for (j, cap) in [(a, 1000.0), (b, 1500.0)] {
            let total: f64 = (0..n).map(|i| lv.mand_share(PrincipalId(i), j)).sum();
            assert!((total - cap).abs() < 1e-9, "server {j}: {total} != {cap}");
        }
    }

    #[test]
    fn scaled_converts_rates_to_window_budgets() {
        let (g, _a, b, ..) = figure3();
        let lv = g.access_levels().scaled(0.1); // 100 ms windows
        assert!((lv.mandatory(b) - 76.0).abs() < 1e-9);
        assert!((lv.optional(b) - 134.0).abs() < 1e-9);
        assert!((lv.capacities()[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_capacity_change_reflows() {
        let (mut g, a, b, _c) = figure3();
        g.set_capacity(a, 2000.0).unwrap();
        let lv = g.access_levels();
        // B's currency value becomes 1500 + 2000×0.4 = 2300; MC_B = 920.
        assert!((lv.mandatory(b) - 920.0).abs() < 1e-9);
        assert!((lv.mandatory(a) - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn no_agreements_means_own_capacity_only() {
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 320.0);
        let b = g.add_principal("B", 250.0);
        let lv = g.access_levels();
        assert_eq!(lv.mandatory(a), 320.0);
        assert_eq!(lv.optional(a), 0.0);
        assert_eq!(lv.mand_share(a, b), 0.0);
        assert_eq!(lv.mandatory(b), 250.0);
    }

    #[test]
    fn service_provider_pattern_splits_capacity() {
        // Provider S (V=320) with customers A [0.2,1] and B [0.8,1]
        // (Figure 6 setup). A and B own no resources themselves.
        let mut g = AgreementGraph::new();
        let s = g.add_principal("S", 320.0);
        let a = g.add_principal("A", 0.0);
        let b = g.add_principal("B", 0.0);
        g.add_agreement(s, a, 0.2, 1.0).unwrap();
        g.add_agreement(s, b, 0.8, 1.0).unwrap();
        let lv = g.access_levels();
        assert!((lv.mandatory(a) - 64.0).abs() < 1e-9); // 20% of 320
        assert!((lv.mandatory(b) - 256.0).abs() < 1e-9); // 80% of 320
        assert_eq!(lv.mandatory(s), 0.0); // fully committed
        // Both can burst to the full server optionally.
        assert!((lv.optional(a) - 256.0).abs() < 1e-9); // (1.0-0.2)×320
        assert!((lv.optional(b) - 64.0).abs() < 1e-9);
        lv.check_mandatory_feasible(1e-9).unwrap();
    }
}
