//! Transitive flow computation (paper Figure 5, Formulae 1–2).
//!
//! `MI_ji` — the mandatory resource flow from principal `j`'s physical
//! capacity into principal `i`'s currency — is the sum over all *simple*
//! paths `j → k_1 → … → i` of `V_j · lb(j,k_1) · lb(k_1,k_2) ⋯ lb(k_{r}, i)`:
//! mandatory value flows along mandatory tickets only.
//!
//! `OI_ji` — the optional flow — captures paths where mandatory value
//! travels some prefix of the path via mandatory tickets, crosses *one*
//! optional ticket (the `ub − lb` slice), and continues via agreement upper
//! bounds thereafter: for a path with edges `e_1 … e_m`,
//! `Σ_{r=0}^{m-1} (Π_{s≤r} lb_s) · (ub_{r+1} − lb_{r+1}) · (Π_{s>r+1} ub_s)`.
//!
//! Both sums exclude paths revisiting a node (the paper's summation
//! constraints `k_p ≠ k_q, k ≠ i, j`), so cyclic agreement graphs are safe.
//! Because `MI_ji = V_j × MT_ji` and `OI_ji = V_j × OT_ji`, the `MT`/`OT`
//! coefficient matrices are precomputed once per graph shape and reused as
//! capacities fluctuate.
//!
//! # Complexity
//!
//! Exact simple-path enumeration is exponential in the worst case (dense
//! graphs with many long chains of agreements). This is fine for the
//! paper's setting — "the number of principals involved in the agreements
//! … is expected to be small" — and the computation runs *once per graph
//! shape*, not per window. For large, dense communities use the paper's
//! own remedy: the bounded-length truncation
//! [`crate::AgreementGraph::flows_bounded`] (`MI^(m)`/`OI^(m)` with small
//! `m`), which caps path length and is what transitive value decays along
//! anyway (each hop multiplies by `lb ≤ 1`).

use crate::{AgreementGraph, PrincipalId};
use serde::{Deserialize, Serialize};

/// Options controlling the flow computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowOptions {
    /// Maximum number of tickets (edges) per transitive path; `None` means
    /// unbounded, i.e. the full transitive closure over simple paths (which
    /// have at most `n − 1` edges).
    pub max_path_len: Option<usize>,
}

/// Precomputed flow coefficient matrices for an agreement graph.
///
/// `mt[j][i]` (`MT_ji`) and `ot[j][i]` (`OT_ji`) are the capacity-independent
/// coefficients such that `MI_ji = V_j × MT_ji` and `OI_ji = V_j × OT_ji`.
/// Diagonals are `MT_jj = 1`, `OT_jj = 0` (a principal's own capacity flows
/// to itself entirely and mandatorily).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowMatrices {
    n: usize,
    mt: Vec<Vec<f64>>,
    ot: Vec<Vec<f64>>,
    /// `Σ_k lb_ik` per principal: the fraction of `i`'s currency leaked out
    /// via mandatory tickets.
    out_fraction: Vec<f64>,
}

impl FlowMatrices {
    /// Runs the path enumeration for `graph` under `opts`.
    pub fn compute(graph: &AgreementGraph, opts: FlowOptions) -> Self {
        let n = graph.len();
        let mut mt = vec![vec![0.0; n]; n];
        let mut ot = vec![vec![0.0; n]; n];
        for (j, row) in mt.iter_mut().enumerate() {
            row[j] = 1.0;
        }

        // Adjacency: edges[i] = list of (holder, lb, ub) issued by i.
        let mut edges: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new(); n];
        for a in graph.agreements() {
            edges[a.issuer.0].push((a.holder.0, a.lb.get(), a.ub.get()));
        }

        let max_len = opts.max_path_len.unwrap_or(n.saturating_sub(1)).min(n.saturating_sub(1));

        // DFS from every source j over simple paths, carrying two partial
        // products: `mand` = Π lb so far (mandatory value still flowing), and
        // `opt` = Σ over earlier switch points of mand-prefix × (ub−lb) ×
        // ub-suffix so far. At each new edge (lb, ub):
        //   opt'  = opt × ub + mand × (ub − lb)   (either already optional and
        //            propagating at the upper bound, or switching here)
        //   mand' = mand × lb
        for j in 0..n {
            let mut visited = vec![false; n];
            visited[j] = true;
            Self::dfs(j, j, 1.0, 0.0, 0, max_len, &edges, &mut visited, &mut mt, &mut ot);
        }

        let out_fraction = (0..n)
            .map(|i| graph.mandatory_out_fraction(PrincipalId(i)))
            .collect();

        FlowMatrices { n, mt, ot, out_fraction }
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        src: usize,
        at: usize,
        mand: f64,
        opt: f64,
        depth: usize,
        max_len: usize,
        edges: &[Vec<(usize, f64, f64)>],
        visited: &mut [bool],
        mt: &mut [Vec<f64>],
        ot: &mut [Vec<f64>],
    ) {
        if depth == max_len {
            return;
        }
        for &(next, lb, ub) in &edges[at] {
            if visited[next] {
                continue;
            }
            let nmand = mand * lb;
            let nopt = opt * ub + mand * (ub - lb);
            if nmand > 0.0 || nopt > 0.0 {
                mt[src][next] += nmand;
                ot[src][next] += nopt;
                visited[next] = true;
                Self::dfs(src, next, nmand, nopt, depth + 1, max_len, edges, visited, mt, ot);
                visited[next] = false;
            }
        }
    }

    /// Number of principals.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph had no principals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Capacity-independent mandatory coefficient `MT_ji` (flow from `j`'s
    /// physical resource into `i`'s currency, per unit of `V_j`).
    #[inline]
    pub fn mt(&self, j: PrincipalId, i: PrincipalId) -> f64 {
        self.mt[j.0][i.0]
    }

    /// Capacity-independent optional coefficient `OT_ji`.
    #[inline]
    pub fn ot(&self, j: PrincipalId, i: PrincipalId) -> f64 {
        self.ot[j.0][i.0]
    }

    /// Mandatory flow `MI_ji = V_j × MT_ji` for concrete capacities `v`.
    #[inline]
    pub fn mi(&self, v: &[f64], j: PrincipalId, i: PrincipalId) -> f64 {
        v[j.0] * self.mt[j.0][i.0]
    }

    /// Optional flow `OI_ji = V_j × OT_ji` for concrete capacities `v`.
    #[inline]
    pub fn oi(&self, v: &[f64], j: PrincipalId, i: PrincipalId) -> f64 {
        v[j.0] * self.ot[j.0][i.0]
    }

    /// The mandatory leak-out fraction `Σ_k lb_ik` of principal `i`.
    #[inline]
    pub fn out_fraction(&self, i: PrincipalId) -> f64 {
        self.out_fraction[i.0]
    }

    /// The real mandatory value of `i`'s currency: `V_i + Σ_{j≠i} MI_ji`
    /// (before excluding outbound leaks). In Figure 3 this is 1900 for `B`.
    pub fn currency_mandatory_value(&self, v: &[f64], i: PrincipalId) -> f64 {
        (0..self.n).map(|j| v[j] * self.mt[j][i.0]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AgreementGraph;

    fn figure3() -> (AgreementGraph, PrincipalId, PrincipalId, PrincipalId) {
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 1000.0);
        let b = g.add_principal("B", 1500.0);
        let c = g.add_principal("C", 0.0);
        g.add_agreement(a, b, 0.4, 0.6).unwrap();
        g.add_agreement(b, c, 0.6, 1.0).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn figure3_mandatory_currency_values() {
        let (g, a, b, c) = figure3();
        let f = g.flows();
        let v = g.capacities();
        // B's currency: 1500 + 1000×0.4 = 1900; C's: 0.6×1900 = 1140.
        assert!((f.currency_mandatory_value(&v, a) - 1000.0).abs() < 1e-9);
        assert!((f.currency_mandatory_value(&v, b) - 1900.0).abs() < 1e-9);
        assert!((f.currency_mandatory_value(&v, c) - 1140.0).abs() < 1e-9);
    }

    #[test]
    fn figure3_flow_coefficients() {
        let (g, a, b, c) = figure3();
        let f = g.flows();
        // MT: A→B 0.4; A→C 0.4×0.6 = 0.24; B→C 0.6.
        assert!((f.mt(a, b) - 0.4).abs() < 1e-12);
        assert!((f.mt(a, c) - 0.24).abs() < 1e-12);
        assert!((f.mt(b, c) - 0.6).abs() < 1e-12);
        assert_eq!(f.mt(b, a), 0.0);
        assert_eq!(f.mt(c, a), 0.0);
        // OT: A→B 0.2; B→C 0.4; A→C 0.2×1.0 + 0.4×0.4 = 0.36.
        assert!((f.ot(a, b) - 0.2).abs() < 1e-12);
        assert!((f.ot(b, c) - 0.4).abs() < 1e-12);
        assert!((f.ot(a, c) - 0.36).abs() < 1e-12);
    }

    #[test]
    fn o_ticket4_real_value_from_flows() {
        // O-Ticket4's real value in the paper: 1900×0.4 + 200×1.0 = 960.
        // In flow terms, C's total optional in-flow is V_A×OT_AC + V_B×OT_BC.
        let (g, a, b, c) = figure3();
        let f = g.flows();
        let v = g.capacities();
        let oi_c = f.oi(&v, a, c) + f.oi(&v, b, c);
        assert!((oi_c - 960.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_path_length_truncates_transitive_flows() {
        let (g, a, _b, c) = figure3();
        // Paths of length ≤ 1 capture only direct agreements: no A→C flow.
        let f1 = g.flows_bounded(1);
        assert_eq!(f1.mt(a, c), 0.0);
        assert_eq!(f1.ot(a, c), 0.0);
        // Length ≤ 2 recovers the full closure for this 3-node chain.
        let f2 = g.flows_bounded(2);
        assert!((f2.mt(a, c) - 0.24).abs() < 1e-12);
    }

    #[test]
    fn cycles_do_not_diverge() {
        // A ⇄ B with generous bounds: simple-path restriction must keep the
        // flows finite and each pair's coefficient a plain product.
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 100.0);
        let b = g.add_principal("B", 200.0);
        g.add_agreement(a, b, 0.5, 1.0).unwrap();
        g.add_agreement(b, a, 0.5, 1.0).unwrap();
        let f = g.flows();
        assert!((f.mt(a, b) - 0.5).abs() < 1e-12);
        assert!((f.mt(b, a) - 0.5).abs() < 1e-12);
        // No A→B→A→B… amplification.
        assert!(f.mt(a, a) <= 1.0 + 1e-12);
    }

    #[test]
    fn three_cycle_flows_are_simple_paths_only() {
        let mut g = AgreementGraph::new();
        let a = g.add_principal("A", 90.0);
        let b = g.add_principal("B", 90.0);
        let c = g.add_principal("C", 90.0);
        g.add_agreement(a, b, 0.3, 0.3).unwrap();
        g.add_agreement(b, c, 0.3, 0.3).unwrap();
        g.add_agreement(c, a, 0.3, 0.3).unwrap();
        let f = g.flows();
        // A→C: only the path A→B→C (A→B→C→A→… revisits A).
        assert!((f.mt(a, c) - 0.09).abs() < 1e-12);
        assert!((f.mt(a, b) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn conservation_of_mandatory_flow_per_source() {
        // For any graph, the retained shares of one source's capacity across
        // all principals sum to exactly that capacity:
        //   Σ_i MT_ji × (1 − out_i) = 1 when every lb-budget leak eventually
        // terminates (acyclic case).
        let (g, ..) = figure3();
        let f = g.flows();
        for j in 0..g.len() {
            let total: f64 = (0..g.len())
                .map(|i| f.mt[j][i] * (1.0 - f.out_fraction[i]))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "source {j}: {total}");
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = AgreementGraph::new();
        let f = g.flows();
        assert!(f.is_empty());

        let mut g = AgreementGraph::new();
        let a = g.add_principal("solo", 42.0);
        let f = g.flows();
        assert_eq!(f.len(), 1);
        assert_eq!(f.mt(a, a), 1.0);
        assert_eq!(f.ot(a, a), 0.0);
        assert!((f.currency_mandatory_value(&[42.0], a) - 42.0).abs() < 1e-12);
    }
}
