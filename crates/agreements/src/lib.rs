//! Ticket/currency representation of resource sharing agreements.
//!
//! This crate implements Section 2 and Section 3.1.1 of Zhao & Karamcheti,
//! *Enforcing Resource Sharing Agreements among Distributed Server Clusters*
//! (IPDPS 2002): a uniform, application-independent representation of
//! agreements between principals, and the computation that reduces an
//! arbitrary agreement graph to per-principal (and per-pair) mandatory and
//! optional access levels.
//!
//! # Model
//!
//! A set of [`Principal`]s own *rate resources* (server capacity, measured in
//! requests per second, scaled by the average per-request cost). Each
//! principal has a [`Currency`] funded by its physical resources. An
//! [`Agreement`] `[lb, ub]` from principal `i` to principal `j` lets `j`
//! access between a fraction `lb` (guaranteed during overload) and `ub`
//! (best-effort) of `i`'s currency value. Agreements are represented as a
//! flow of [`Ticket`]s — a *mandatory* ticket of face value `lb` and an
//! *optional* ticket of face value `ub - lb`, denominated in the issuer's
//! currency.
//!
//! Because tickets contribute value to the recipient's currency, agreements
//! compose transitively: if `A` shares with `B` and `B` shares with `C`, part
//! of `A`'s physical resource flows through to `C` without any explicit
//! `A`–`C` agreement. [`AgreementGraph::access_levels`] performs the
//! transitive-closure computation of Figure 5 of the paper and yields an
//! [`AccessLevels`] table: for every principal `i` and every physical
//! resource owner `j`, the mandatory entitlement `m[i][j]` and optional
//! entitlement `o[i][j]`, plus the per-principal aggregates `MC_i` and
//! `OC_i` used by the scheduler.
//!
//! # Worked example (paper Figure 3)
//!
//! ```
//! use covenant_agreements::{AgreementGraph, Fraction};
//!
//! let mut g = AgreementGraph::new();
//! let a = g.add_principal("A", 1000.0);
//! let b = g.add_principal("B", 1500.0);
//! let c = g.add_principal("C", 0.0);
//! g.add_agreement(a, b, 0.4, 0.6).unwrap();
//! g.add_agreement(b, c, 0.6, 1.0).unwrap();
//!
//! let levels = g.access_levels();
//! assert_eq!(levels.mandatory(a).round(), 600.0);
//! assert_eq!(levels.optional(a).round(), 400.0);
//! assert_eq!(levels.mandatory(b).round(), 760.0);
//! assert_eq!(levels.optional(b).round(), 1340.0);
//! assert_eq!(levels.mandatory(c).round(), 1140.0);
//! assert_eq!(levels.optional(c).round(), 960.0);
//! # let _ = Fraction::new(0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod currency;
mod error;
mod flows;
mod graph;
mod hierarchy;
mod levels;
mod multi;
mod ticket;

pub use currency::{Currency, CurrencyValue};
pub use error::AgreementError;
pub use flows::{FlowMatrices, FlowOptions};
pub use graph::{Agreement, AgreementGraph, Principal, PrincipalId};
pub use hierarchy::{Hierarchy, Role};
pub use levels::AccessLevels;
pub use multi::{MultiAccessLevels, MultiAgreementGraph, ResourceKind, ResourceVector};
pub use ticket::{Fraction, Ticket, TicketKind};
